// librock — core/components.h
//
// Fast path for the common high-θ regime: ROCK "stops clustering if the
// number of links between every pair of the remaining clusters becomes
// zero" (§4.3), so whenever the requested k is at or below the number of
// connected components of the *link graph*, the final clustering is exactly
// those components — no heaps, no merge ordering needed. (This observation
// was later published as the QROCK variant.) The paper's own mushroom run
// is an instance: 21 link-components at θ = 0.8.
//
// LinkComponents computes that clustering directly in O(edges) after link
// computation, and reports whether the shortcut is exact for a given k
// (k <= number of components). For k above the component count the merge
// engine is still required.

#ifndef ROCK_CORE_COMPONENTS_H_
#define ROCK_CORE_COMPONENTS_H_

#include "core/cluster.h"
#include "core/options.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "similarity/similarity.h"

namespace rock {

/// Result of the component shortcut.
struct LinkComponentsResult {
  /// One cluster per link-graph component (isolated/pruned points are
  /// kUnassigned), sorted by decreasing size.
  Clustering clustering;
  /// Number of points dropped by the min_neighbors prune.
  size_t num_pruned_points = 0;
};

/// Connected components of the link graph (edges = point pairs with
/// link > 0). Points with fewer than `min_neighbors` graph neighbors are
/// pruned exactly as the clusterer would.
LinkComponentsResult LinkComponents(const NeighborGraph& graph,
                                    const LinkMatrix& links,
                                    size_t min_neighbors = 1);

/// Convenience: neighbors → links → components in one call.
Result<LinkComponentsResult> ComputeLinkComponents(
    const PointSimilarity& sim, double theta, size_t min_neighbors = 1);

}  // namespace rock

#endif  // ROCK_CORE_COMPONENTS_H_
