#include "core/model_bundle.h"

#include <cmath>
#include <cstdio>

#include "util/bytes.h"
#include "util/checksum.h"
#include "util/failpoint.h"

namespace rock {

namespace {

constexpr uint64_t kModelMagic = 0x524f434b4d4f444cULL;  // "ROCKMODL"
// Version 2 appended the build-time profile (drift baseline). Version-1
// files still load, with an empty profile.
constexpr uint32_t kModelVersion = 2;
constexpr uint32_t kMinModelVersion = 1;
constexpr size_t kHeaderSize = sizeof(kModelMagic) + sizeof(kModelVersion) +
                               sizeof(uint64_t) + sizeof(uint32_t);

// Caps on serialized counts: anything beyond these is a corrupt length
// field, not data, and must not turn into an allocation.
constexpr uint64_t kMaxModelClusters = 1u << 24;
constexpr uint64_t kMaxModelSetSize = 1u << 28;
constexpr uint64_t kMaxModelItems = 1u << 24;
constexpr uint64_t kMaxModelDictEntries = 1u << 24;
constexpr uint64_t kMaxModelNameLength = 1u << 16;

constexpr char kReaderContext[] = "model-bundle payload";

std::vector<uint8_t> SerializePayload(const ModelBundle& b) {
  ByteWriter w;
  const CheckpointFingerprint& fp = b.fingerprint;
  w.Pod(fp.store_count);
  w.Pod(fp.theta);
  w.Pod(fp.num_clusters);
  w.Pod(fp.min_neighbors);
  w.Pod(fp.outlier_stop_multiple);
  w.Pod(fp.min_cluster_support);
  w.Pod(fp.sample_size);
  w.Pod(fp.sample_seed);
  w.Pod(fp.labeling_fraction);
  w.Pod(fp.min_labeling_points);
  w.Pod(fp.labeling_seed);

  w.Pod(b.theta);
  w.Pod(b.f_exponent);

  w.Pod(static_cast<uint64_t>(b.labeling_sets.size()));
  for (const auto& set : b.labeling_sets) {
    w.Pod(static_cast<uint64_t>(set.size()));
    for (const Transaction& tx : set) {
      w.Pod(static_cast<uint32_t>(tx.size()));
      if (!tx.empty()) {
        w.Write(tx.items().data(), tx.size() * sizeof(ItemId));
      }
    }
  }

  w.Pod(static_cast<uint64_t>(b.dictionary.size()));
  for (const std::string& name : b.dictionary) {
    w.Pod(static_cast<uint32_t>(name.size()));
    if (!name.empty()) {
      w.Write(name.data(), name.size());
    }
  }

  // Version 2: the build-time profile. Written even when empty (rows = 0)
  // so the payload shape is a pure function of the version.
  const ModelProfile& profile = b.profile;
  w.Pod(profile.rows);
  w.Pod(profile.outlier_share);
  w.Pod(profile.mean_score);
  w.Pod(static_cast<uint64_t>(profile.cluster_share.size()));
  for (size_t c = 0; c < profile.cluster_share.size(); ++c) {
    w.Pod(profile.cluster_share[c]);
    w.Pod(c < profile.mean_neighbors.size() ? profile.mean_neighbors[c]
                                            : 0.0);
  }
  return std::move(w.buf);
}

/// NaN-safe plausibility gate shared by save and load: a profile is either
/// empty or a well-formed distribution over the bundle's clusters.
bool ProfilePlausible(const ModelProfile& p, size_t num_clusters) {
  if (p.empty()) {
    return p.cluster_share.empty() && p.mean_neighbors.empty();
  }
  if (p.cluster_share.size() != num_clusters ||
      p.mean_neighbors.size() != num_clusters) {
    return false;
  }
  if (!(p.outlier_share >= 0.0 && p.outlier_share <= 1.0)) return false;
  if (!(p.mean_score >= 0.0) || !std::isfinite(p.mean_score)) return false;
  for (double s : p.cluster_share) {
    if (!(s >= 0.0 && s <= 1.0)) return false;
  }
  for (double m : p.mean_neighbors) {
    if (!(m >= 0.0) || !std::isfinite(m)) return false;
  }
  return true;
}

Status ParsePayload(const uint8_t* data, size_t size, uint32_t version,
                    ModelBundle* b) {
  ByteReader r{data, size, 0, kReaderContext};
  CheckpointFingerprint& fp = b->fingerprint;
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.store_count));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.theta));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.num_clusters));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.min_neighbors));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.outlier_stop_multiple));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.min_cluster_support));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.sample_size));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.sample_seed));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.labeling_fraction));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.min_labeling_points));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp.labeling_seed));

  ROCK_RETURN_IF_ERROR(r.Pod(&b->theta));
  ROCK_RETURN_IF_ERROR(r.Pod(&b->f_exponent));
  // NaN-safe plausibility gate, as in TransactionLabeler::Load.
  if (!(b->theta >= 0.0 && b->theta <= 1.0) || !(b->f_exponent >= 0.0)) {
    return Status::Corruption("implausible model parameters");
  }

  uint64_t num_clusters = 0;
  ROCK_RETURN_IF_ERROR(r.Pod(&num_clusters));
  if (num_clusters > kMaxModelClusters || num_clusters > r.Remaining()) {
    return Status::Corruption("implausible model cluster count");
  }
  b->labeling_sets.clear();
  b->labeling_sets.resize(static_cast<size_t>(num_clusters));
  for (auto& set : b->labeling_sets) {
    uint64_t set_size = 0;
    ROCK_RETURN_IF_ERROR(r.Pod(&set_size));
    if (set_size > kMaxModelSetSize || set_size > r.Remaining()) {
      return Status::Corruption("implausible model labeling-set size");
    }
    set.reserve(static_cast<size_t>(set_size));
    for (uint64_t t = 0; t < set_size; ++t) {
      uint32_t n = 0;
      ROCK_RETURN_IF_ERROR(r.Pod(&n));
      if (n > kMaxModelItems ||
          static_cast<size_t>(n) * sizeof(ItemId) > r.Remaining()) {
        return Status::Corruption("implausible model transaction length");
      }
      std::vector<ItemId> items(n);
      if (n > 0) {
        ROCK_RETURN_IF_ERROR(
            r.Read(items.data(), static_cast<size_t>(n) * sizeof(ItemId)));
      }
      set.emplace_back(std::move(items));
    }
  }

  uint64_t dict_size = 0;
  ROCK_RETURN_IF_ERROR(r.Pod(&dict_size));
  if (dict_size > kMaxModelDictEntries || dict_size > r.Remaining()) {
    return Status::Corruption("implausible model dictionary size");
  }
  b->dictionary.clear();
  b->dictionary.resize(static_cast<size_t>(dict_size));
  for (std::string& name : b->dictionary) {
    uint32_t len = 0;
    ROCK_RETURN_IF_ERROR(r.Pod(&len));
    if (len > kMaxModelNameLength || len > r.Remaining()) {
      return Status::Corruption("implausible model dictionary entry");
    }
    name.resize(len);
    if (len > 0) {
      ROCK_RETURN_IF_ERROR(r.Read(name.data(), len));
    }
  }

  b->profile = ModelProfile{};
  if (version >= 2) {
    ModelProfile& profile = b->profile;
    ROCK_RETURN_IF_ERROR(r.Pod(&profile.rows));
    ROCK_RETURN_IF_ERROR(r.Pod(&profile.outlier_share));
    ROCK_RETURN_IF_ERROR(r.Pod(&profile.mean_score));
    uint64_t profile_clusters = 0;
    ROCK_RETURN_IF_ERROR(r.Pod(&profile_clusters));
    if (profile_clusters > kMaxModelClusters ||
        profile_clusters > r.Remaining() / (2 * sizeof(double))) {
      return Status::Corruption("implausible model profile size");
    }
    profile.cluster_share.resize(static_cast<size_t>(profile_clusters));
    profile.mean_neighbors.resize(static_cast<size_t>(profile_clusters));
    for (size_t c = 0; c < profile.cluster_share.size(); ++c) {
      ROCK_RETURN_IF_ERROR(r.Pod(&profile.cluster_share[c]));
      ROCK_RETURN_IF_ERROR(r.Pod(&profile.mean_neighbors[c]));
    }
    if (!ProfilePlausible(profile, b->labeling_sets.size())) {
      return Status::Corruption("implausible model profile");
    }
  }

  if (r.Remaining() != 0) {
    return Status::Corruption("trailing bytes after model-bundle payload");
  }
  return Status::OK();
}

}  // namespace

double ModelProfile::OverallMeanNeighbors() const {
  double mass = 0.0;
  double weighted = 0.0;
  for (size_t c = 0; c < cluster_share.size(); ++c) {
    mass += cluster_share[c];
    weighted += cluster_share[c] *
                (c < mean_neighbors.size() ? mean_neighbors[c] : 0.0);
  }
  return mass > 0.0 ? weighted / mass : 0.0;
}

Status SaveModelBundle(const ModelBundle& bundle, const std::string& path) {
  // Symmetric with the load-side plausibility gate: a bundle we would
  // refuse to load must never reach disk in the first place.
  if (!(bundle.theta >= 0.0 && bundle.theta <= 1.0) ||
      !(bundle.f_exponent >= 0.0)) {
    return Status::InvalidArgument("implausible model parameters");
  }
  if (!ProfilePlausible(bundle.profile, bundle.labeling_sets.size())) {
    return Status::InvalidArgument("implausible model profile");
  }
  const std::vector<uint8_t> payload = SerializePayload(bundle);

  ByteWriter file;
  file.buf.reserve(kHeaderSize + payload.size());
  file.Pod(kModelMagic);
  file.Pod(kModelVersion);
  file.Pod(static_cast<uint64_t>(payload.size()));
  file.Pod(Crc32(payload.data(), payload.size()));
  file.Write(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  switch (fail::Consult("model.save")) {
    case fail::Action::kNone:
      break;
    case fail::Action::kTornWrite:
      // A filesystem without atomic rename tearing the bundle: half the
      // bytes land at the *final* path.
      ROCK_RETURN_IF_ERROR(
          WriteFileBytes(path, file.buf.data(), file.buf.size() / 2));
      return fail::InjectedError("model.save");
    case fail::Action::kCrash:
      // Death between writing the tmp file and renaming it.
      ROCK_RETURN_IF_ERROR(
          WriteFileBytes(tmp, file.buf.data(), file.buf.size()));
      return fail::InjectedCrash("model.save");
    case fail::Action::kError:
    case fail::Action::kShortRead:
      return fail::InjectedError("model.save");
  }

  ROCK_RETURN_IF_ERROR(WriteFileBytes(tmp, file.buf.data(), file.buf.size()));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + tmp + "' over '" + path + "'");
  }
  return Status::OK();
}

Result<ModelBundle> LoadModelBundle(const std::string& path) {
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("model.load"));
  Result<std::vector<uint8_t>> bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t> bytes = std::move(bytes_or).value();

  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("model bundle '" + path + "' is truncated");
  }
  ByteReader header{bytes.data(), kHeaderSize, 0, kReaderContext};
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t expected_crc = 0;
  ROCK_RETURN_IF_ERROR(header.Pod(&magic));
  if (magic != kModelMagic) {
    return Status::Corruption("'" + path + "' is not a model bundle");
  }
  ROCK_RETURN_IF_ERROR(header.Pod(&version));
  if (version < kMinModelVersion || version > kModelVersion) {
    return Status::Corruption("unsupported model-bundle version " +
                              std::to_string(version));
  }
  ROCK_RETURN_IF_ERROR(header.Pod(&payload_size));
  ROCK_RETURN_IF_ERROR(header.Pod(&expected_crc));
  if (payload_size != bytes.size() - kHeaderSize) {
    return Status::Corruption("model bundle '" + path +
                              "' payload size mismatch (torn write)");
  }
  const uint8_t* payload = bytes.data() + kHeaderSize;
  if (Crc32(payload, static_cast<size_t>(payload_size)) != expected_crc) {
    return Status::Corruption("model bundle '" + path +
                              "' checksum mismatch (bit rot or torn write)");
  }

  ModelBundle bundle;
  ROCK_RETURN_IF_ERROR(ParsePayload(payload, static_cast<size_t>(payload_size),
                                    version, &bundle));
  return bundle;
}

}  // namespace rock
