// librock — core/checkpoint.h
//
// Crash-safe persistence of pipeline progress (docs/ROBUSTNESS.md). The
// labeling phase is the only stage that touches the whole database, so a
// pipeline checkpoint freezes everything cheaper than that scan — the
// sampled rows, the sample clustering, the pinned shard plan — plus the
// per-shard labeling progress, letting `rock pipeline --resume` skip both
// the re-clustering and every shard that already finished.
//
// File format (little-endian):
//   [u64 magic "ROCKCKPT"][u32 version][u64 payload_size][u32 crc32]
//   payload_size × u8 payload
// `crc32` covers the payload bytes. Load() rejects wrong magic/version,
// truncated or oversized files, and checksum mismatches as Corruption —
// a torn or bit-rotted checkpoint is detected and discarded (the pipeline
// then restarts cleanly), never resumed into wrong labels.
//
// Writes are atomic-by-rename: the bytes go to "<path>.tmp" and are
// renamed over `path` only once complete. The "pipeline.checkpoint"
// failpoint site models the two crash shapes tests need: `torn_write`
// leaves a truncated file at the *final* path (a non-atomic filesystem),
// `crash` leaves only the tmp file (death between write and rename).

#ifndef ROCK_CORE_CHECKPOINT_H_
#define ROCK_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"
#include "core/labeling.h"
#include "core/rock.h"
#include "data/transaction.h"

namespace rock {

/// Identity of the run a checkpoint belongs to. A resumed run recomputes
/// its own fingerprint and must match the stored one exactly — resuming
/// with a different store, θ, k, seed or sampling setup would silently mix
/// two different clusterings. (The link-expectation function f(θ) is code,
/// not data, and cannot be fingerprinted; resume assumes it is unchanged.)
struct CheckpointFingerprint {
  uint64_t store_count = 0;         ///< rows in the transaction store
  double theta = 0.0;               ///< RockOptions::theta
  uint64_t num_clusters = 0;        ///< RockOptions::num_clusters (k)
  uint64_t min_neighbors = 0;       ///< RockOptions::min_neighbors
  double outlier_stop_multiple = 0.0;
  uint64_t min_cluster_support = 0;
  uint64_t sample_size = 0;         ///< effective (clamped) sample size
  uint64_t sample_seed = 0;         ///< PipelineOptions::seed
  double labeling_fraction = 0.0;   ///< LabelingOptions::fraction
  uint64_t min_labeling_points = 0; ///< LabelingOptions::min_labeling_points
  uint64_t labeling_seed = 0;       ///< LabelingOptions::seed

  bool operator==(const CheckpointFingerprint&) const = default;
};

/// Everything a resumed pipeline needs: the run fingerprint, the sample
/// phase outputs (rows, transactions, clustering, merge history, stats),
/// and the labeling progress over a pinned shard plan. The clustering's
/// member lists are serialized verbatim — TransactionLabeler::Build's RNG
/// draws index into them, so rebuilding them from the assignment vector
/// would change the labeling sets.
struct PipelineCheckpoint {
  CheckpointFingerprint fingerprint;

  // Sample phase (store order).
  std::vector<uint64_t> sample_rows;
  std::vector<Transaction> sample;
  Clustering clustering;
  std::vector<MergeRecord> merges;
  RockStats stats;

  // Labeling progress. `num_shards` pins the shard plan so a resumed run
  // replans identical boundaries at any thread count; the per-shard
  // vectors have one entry per planned shard, and `assignments` /
  // `ground_truth` cover every store row (only completed shards' rows are
  // meaningful).
  uint64_t num_shards = 0;
  std::vector<uint8_t> shard_done;
  std::vector<TransactionLabeler::AssignStats> shard_stats;
  std::vector<uint64_t> shard_outliers;
  std::vector<ClusterIndex> assignments;
  std::vector<LabelId> ground_truth;
};

/// Atomically writes `checkpoint` to `path` (tmp + rename). Consults the
/// "pipeline.checkpoint" failpoint site; see the header comment for the
/// torn_write / crash shapes it injects.
Status SaveCheckpoint(const PipelineCheckpoint& checkpoint,
                      const std::string& path);

/// Reads and validates a checkpoint. Missing file → IOError; wrong magic,
/// wrong version, truncation, trailing bytes, checksum mismatch, or any
/// implausible payload field → Corruption. Consults "checkpoint.load".
Result<PipelineCheckpoint> LoadCheckpoint(const std::string& path);

}  // namespace rock

#endif  // ROCK_CORE_CHECKPOINT_H_
