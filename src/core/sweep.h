// librock — core/sweep.h
//
// θ is ROCK's one judgment call (see docs/ALGORITHM.md §5). SweepTheta runs
// the clusterer across a grid of thresholds and reports, per θ, the
// structural quantities a practitioner reads to pick a value: neighbor-
// graph density, pruned outliers, cluster count, biggest-cluster share and
// the criterion E_l. The paper itself reports per-θ behavior in Fig. 5 and
// Table 6; this utility packages that workflow.

#ifndef ROCK_CORE_SWEEP_H_
#define ROCK_CORE_SWEEP_H_

#include <vector>

#include "common/status.h"
#include "core/rock.h"

namespace rock {

/// One row of a θ sweep.
struct SweepPoint {
  double theta = 0.0;
  double average_degree = 0.0;   ///< m_a of the neighbor graph
  size_t num_clusters = 0;
  size_t num_outliers = 0;       ///< pruned + weeded points
  size_t largest_cluster = 0;
  double criterion = 0.0;        ///< E_l of the final clustering
  double seconds = 0.0;          ///< wall clock of this run
};

/// Runs ROCK once per θ in `thetas` (each must be in [0, 1]); all other
/// options are taken from `options` (its theta field is overridden).
Result<std::vector<SweepPoint>> SweepTheta(const PointSimilarity& sim,
                                           const RockOptions& options,
                                           const std::vector<double>& thetas);

/// Convenience grid: `count` evenly spaced values in [lo, hi].
std::vector<double> ThetaGrid(double lo, double hi, size_t count);

}  // namespace rock

#endif  // ROCK_CORE_SWEEP_H_
