// librock — core/merge_flat.cc
//
// The flat-layout merge engine (the default). Same Fig. 3 algorithm as the
// hashed oracle (core/merge_hashed.cc), rebuilt for cache locality:
//
//   * Link rows are consumed through LinkMatrix::Freeze()'s CSR layout —
//     one sequential scan per row instead of hash-bucket chasing.
//   * Each cluster's cross-links live in three parallel flat vectors
//     (ascending partner ids, counts, goodness values) instead of an
//     unordered_map. The Fig. 3 steps 10–15 relink becomes a single
//     three-way sorted merge of u's and v's partner lists; per-partner hash
//     probes disappear.
//   * Dead partners are removed lazily: a merged/weeded cluster's entries
//     stay in place and are skipped via an aliveness bitmap, with rows
//     compacted only once stale entries reach half the row. Lists stay
//     sorted for free because merged-cluster ids are minted monotonically
//     (next_id_++), so every append is larger than all existing entries.
//   * Cluster slabs come from a per-run arena (one vector sized 2n, the id
//     ceiling) — no per-merge allocation, and references into the arena
//     stay stable for the whole run.
//   * The paper's per-cluster local heaps q[i] collapse to an argmax: the
//     goodness of every live entry is stored alongside its count, and each
//     cluster tracks only its best partner under the same strict total
//     order the heaps use (priority desc, key asc). A relink updates the
//     argmax in O(1); only when it invalidates the current best does a
//     linear rescan of the flat row run — amortized O(1) per relink, and a
//     branchy heap sift plus two hash-map updates per level becomes a
//     straight-line scan over a double array.
//   * Global-heap fixups are batched: one InsertOrUpdate per touched x at
//     the end of the merge, the merged cluster taking over u's entry via
//     ReplaceKey (one sift instead of an erase + insert pair), and the
//     initial heap built with one O(n) Assign instead of n inserts.
//
// Results are bit-identical to the hashed engine — a strict total order has
// a unique maximum, so the argmax agrees with heap Top() element for
// element and the merge sequence, clustering, and stats all match
// (tests/diag_differential_test.cc).

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/criterion.h"
#include "core/merge_engine.h"
#include "diag/invariants.h"
#include "graph/parallel.h"
#include "util/updatable_heap.h"

namespace rock::internal {

namespace {

/// Internal cluster id. Initial clusters take ids 0 … n−1; every merge mints
/// the next id, so ids never exceed 2n−1.
using ClusterId = uint32_t;

constexpr double kNoCandidate = -std::numeric_limits<double>::infinity();

/// Flat-layout bookkeeping for one cluster. `partners`/`counts`/`goodness`
/// are parallel arrays in strictly ascending partner-id order; entries
/// whose partner has died (alive bitmap) are stale and skipped lazily, so
/// only `live_links` of them are meaningful. `best_key`/`best_priority`
/// replace the paper's local heap: the live entry maximal under
/// (goodness desc, id asc), or best_priority == −inf when no live entry
/// exists.
struct FlatClusterState {
  std::vector<PointIndex> members;  // sorted point ids
  std::vector<ClusterId> partners;  // ascending; may contain dead ids
  std::vector<uint64_t> counts;     // parallel to partners
  std::vector<double> goodness;     // parallel to partners
  size_t live_links = 0;            // entries whose partner is alive
  ClusterId best_key = 0;
  double best_priority = -std::numeric_limits<double>::infinity();
};

using HeapEntry = UpdatableHeap<ClusterId, double>::Entry;

class FlatMergeEngine {
 public:
  FlatMergeEngine(const NeighborGraph& graph, const RockOptions& options)
      : options_(options), goodness_(options), graph_(graph) {}

  RockResult Run() {
    Timer total_timer;
    RockResult result;
    result.stats.num_points = graph_.size();
    result.stats.average_degree = graph_.AverageDegree();
    result.stats.max_degree = graph_.MaxDegree();

    diag::MetricsRegistry registry;
    metrics_ = options_.diag.collect_metrics ? &registry : nullptr;
    check_every_ =
        diag::InvariantCheckInterval(options_.diag.invariant_check_every);

    PruneIsolatedPoints();
    result.stats.num_pruned_points = pruned_.size();

    Timer link_timer;
    LinkMatrix links = ComputeLinkStage(graph_, options_, metrics_);
    links.Freeze();  // CSR layout for the init scans (packed: already built)
    result.stats.link_seconds = link_timer.ElapsedSeconds();
    if (metrics_ != nullptr) {
      metrics_->RecordSeconds("stage.links", result.stats.link_seconds);
      metrics_->AddCounter("graph.points", graph_.size());
      metrics_->AddCounter("graph.edges", graph_.NumEdges());
      metrics_->AddCounter("graph.max_degree", graph_.MaxDegree());
      metrics_->SetGauge("graph.average_degree", graph_.AverageDegree());
      metrics_->AddCounter("prune.isolated_points", pruned_.size());
      metrics_->AddCounter("links.nonzero_pairs", links.NumNonZeroPairs());
      metrics_->AddCounter("links.total", links.TotalLinks());
    }
    if (check_every_ > 0) {
      diag::CheckNeighborGraph(graph_, &invariant_report_);
      diag::CheckLinkMatrixSymmetry(links, &invariant_report_);
    }

    Timer merge_timer;
    InitializeClusters(links);
    if (metrics_ != nullptr) {
      size_t local_entries = 0;
      for (ClusterId c = 0; c < next_id_; ++c) {
        if (alive_[c]) local_entries += arena_[c].live_links;
      }
      metrics_->MaxCounter("heap.global_peak", global_.size());
      metrics_->MaxCounter("heap.local_entries_peak", local_entries);
    }
    if (check_every_ > 0) VerifyBookkeeping(links);
    MergeLoop(&result, links);
    if (check_every_ > 0) VerifyBookkeeping(links);
    result.stats.merge_seconds = merge_timer.ElapsedSeconds();

    BuildClustering(&result);
    result.stats.total_seconds = total_timer.ElapsedSeconds();
    result.stats.criterion_value =
        CriterionFunction(result.clustering, links, goodness_);
    if (metrics_ != nullptr) {
      metrics_->RecordSeconds("stage.merge", result.stats.merge_seconds);
      metrics_->RecordSeconds("stage.merge.relink", relink_seconds_);
      metrics_->RecordSeconds("stage.merge.heap", heap_seconds_);
      metrics_->RecordSeconds("stage.total", result.stats.total_seconds);
      metrics_->AddCounter("merge.merges", result.stats.num_merges);
      metrics_->AddCounter("merge.goodness_updates", goodness_updates_);
      metrics_->AddCounter("merge.relink_partners", relink_partners_);
      metrics_->AddCounter("merge.relink_dead_skipped", relink_dead_skipped_);
      metrics_->AddCounter("merge.relink_compactions", relink_compactions_);
      metrics_->AddCounter("merge.relink_best_rescans", best_rescans_);
      metrics_->AddCounter("heap.ops", heap_ops_);
      metrics_->AddCounter("weed.clusters", result.stats.num_weeded_clusters);
      metrics_->AddCounter("weed.points", result.stats.num_weeded_points);
      metrics_->AddCounter("diag.invariant_checks",
                           invariant_report_.checks_run());
      metrics_->AddCounter("diag.invariant_violations",
                           invariant_report_.violations().size());
      metrics_->SetGauge("criterion.value", result.stats.criterion_value);
      result.metrics = registry.Snapshot();
    }
    metrics_ = nullptr;
    return result;
  }

 private:
  void PruneIsolatedPoints() {
    for (size_t p = 0; p < graph_.size(); ++p) {
      if (graph_.Degree(p) < options_.min_neighbors) {
        pruned_.push_back(static_cast<PointIndex>(p));
      }
    }
  }

  bool IsPruned(PointIndex p) const {
    return std::binary_search(pruned_.begin(), pruned_.end(), p);
  }

  void InitializeClusters(const LinkMatrix& links) {
    const size_t n = graph_.size();
    arena_.resize(2 * n);  // ids 0 … 2n−1 suffice for n−1 merges
    alive_.assign(2 * n, 0);
    for (PointIndex p = 0; p < n; ++p) {
      if (IsPruned(p)) continue;
      arena_[p].members.push_back(p);
      alive_[p] = 1;
      ++num_live_;
    }
    next_id_ = static_cast<ClusterId>(n);

    // Seed cross-links from the frozen CSR rows: partners arrive already
    // sorted, so the flat vectors fill in one pass and the best entry falls
    // out of the scan (ascending ids ⇒ ties keep the smaller key, matching
    // the heaps' order). Links to pruned points are dropped: pruned
    // outliers never participate.
    for (PointIndex p = 0; p < n; ++p) {
      if (!alive_[p]) continue;
      const LinkRowSpan row = links.FlatRow(p);
      FlatClusterState& s = arena_[p];
      s.partners.reserve(row.size);
      s.counts.reserve(row.size);
      s.goodness.reserve(row.size);
      for (size_t i = 0; i < row.size; ++i) {
        const PointIndex q = row.partners[i];
        if (!alive_[q]) continue;
        const double g = goodness_.Goodness(row.counts[i], 1, 1);
        s.partners.push_back(q);
        s.counts.push_back(row.counts[i]);
        s.goodness.push_back(g);
        if (g > s.best_priority) {
          s.best_priority = g;
          s.best_key = q;
        }
      }
      s.live_links = s.partners.size();
    }

    // One O(n) heapify instead of n sifted inserts; keys are unique and the
    // resulting heap content is identical.
    std::vector<HeapEntry> entries;
    entries.reserve(num_live_);
    for (PointIndex p = 0; p < n; ++p) {
      if (alive_[p]) entries.push_back(HeapEntry{p, LocalBest(p)});
    }
    global_.Assign(std::move(entries));
    heap_ops_ += global_.size();
  }

  double LocalBest(ClusterId c) const { return arena_[c].best_priority; }

  /// Recomputes a cluster's best live entry by scanning its flat row.
  /// Ascending partner order makes ties resolve toward the smaller id,
  /// matching UpdatableHeap's (priority desc, key asc) total order.
  void RecomputeBest(FlatClusterState& s) {
    ++best_rescans_;
    s.best_priority = kNoCandidate;
    s.best_key = 0;
    for (size_t i = 0; i < s.partners.size(); ++i) {
      if (!alive_[s.partners[i]]) continue;
      if (s.goodness[i] > s.best_priority) {
        s.best_priority = s.goodness[i];
        s.best_key = s.partners[i];
      }
    }
  }

  /// link[u, v] from u's flat row. The row stays sorted even with stale
  /// entries (ids are minted monotonically), so this is a binary search.
  uint64_t CountOf(const FlatClusterState& s, ClusterId partner) const {
    auto it =
        std::lower_bound(s.partners.begin(), s.partners.end(), partner);
    assert(it != s.partners.end() && *it == partner);
    return s.counts[static_cast<size_t>(it - s.partners.begin())];
  }

  void MergeLoop(RockResult* result, const LinkMatrix& links) {
    const size_t k = options_.num_clusters;
    const size_t weed_at = WeedThreshold();
    bool weeded = (weed_at == 0);

    while (num_live_ > k) {
      if (!weeded && num_live_ <= weed_at) {
        WeedSmallClusters(result);
        weeded = true;
        continue;
      }
      if (global_.empty()) break;
      const auto top = global_.Top();
      if (top.priority == kNoCandidate) break;  // all cross-links are zero
      const ClusterId u = top.key;
      const ClusterId v = arena_[u].best_key;
      Merge(u, v, result);
      if (check_every_ > 0 &&
          result->stats.num_merges % check_every_ == 0) {
        VerifyBookkeeping(links);
      }
    }
    // A weeding pause configured below k (or exactly at k) still applies
    // when the loop exits normally.
    if (!weeded && num_live_ <= weed_at) {
      WeedSmallClusters(result);
    }
  }

  size_t WeedThreshold() const {
    if (options_.outlier_stop_multiple <= 0.0) return 0;
    const double raw = options_.outlier_stop_multiple *
                       static_cast<double>(options_.num_clusters);
    return static_cast<size_t>(std::ceil(raw));
  }

  /// Frees a dead cluster's slab. The arena slot itself stays (stable
  /// references), only the heap-allocated vectors are returned.
  static void ReleaseState(FlatClusterState& s) {
    s = FlatClusterState{};
  }

  /// Drops stale (dead-partner) entries once they dominate the row. The
  /// 2× threshold amortizes to O(1) per append; tiny rows are left alone.
  void MaybeCompact(FlatClusterState& s) {
    if (s.partners.size() < 8 || s.partners.size() < 2 * s.live_links) {
      return;
    }
    size_t out = 0;
    for (size_t i = 0; i < s.partners.size(); ++i) {
      if (!alive_[s.partners[i]]) continue;
      s.partners[out] = s.partners[i];
      s.counts[out] = s.counts[i];
      s.goodness[out] = s.goodness[i];
      ++out;
    }
    assert(out == s.live_links);
    s.partners.resize(out);
    s.counts.resize(out);
    s.goodness.resize(out);
    ++relink_compactions_;
  }

  void Merge(ClusterId u, ClusterId v, RockResult* result) {
    FlatClusterState& su = arena_[u];
    FlatClusterState& sv = arena_[v];
    const ClusterId w = next_id_++;
    FlatClusterState& sw = arena_[w];  // arena is pre-sized: no reallocation

    sw.members.resize(su.members.size() + sv.members.size());
    std::merge(su.members.begin(), su.members.end(), sv.members.begin(),
               sv.members.end(), sw.members.begin());
    const size_t nw = sw.members.size();

    result->merges.push_back(MergeRecord{
        u, v, w,
        goodness_.Goodness(CountOf(su, v), su.members.size(),
                           sv.members.size()),
        nw});
    ++result->stats.num_merges;

    global_.Erase(v);  // u's entry is renamed to w at the end of the merge
    heap_ops_ += 1;
    // Kill u and v up front: the lazy skip then drops their entries from
    // every partner list (including each other's), and a compaction that
    // fires mid-relink must not keep them. w is born alive for the same
    // reason — its freshly appended entries must survive compaction.
    alive_[u] = 0;
    alive_[v] = 0;
    alive_[w] = 1;

    // Fig. 3 steps 10–15 as one three-way sorted merge: walk u's and v's
    // partner lists in lockstep ascending order; every live x appears in at
    // least one list, its new link count is the sum of what both carried.
    Timer relink_timer;
    const size_t upper = su.live_links + sv.live_links;
    sw.partners.reserve(upper);
    sw.counts.reserve(upper);
    sw.goodness.reserve(upper);
    touched_.clear();

    auto skip_dead = [this](const FlatClusterState& s, size_t& i) {
      while (i < s.partners.size() && !alive_[s.partners[i]]) {
        ++i;
        ++relink_dead_skipped_;
      }
    };
    size_t iu = 0;
    size_t iv = 0;
    skip_dead(su, iu);
    skip_dead(sv, iv);
    while (iu < su.partners.size() || iv < sv.partners.size()) {
      ClusterId x;
      uint64_t count = 0;
      bool from_u = false;
      if (iu < su.partners.size() &&
          (iv >= sv.partners.size() || su.partners[iu] <= sv.partners[iv])) {
        x = su.partners[iu];
        from_u = true;
        count += su.counts[iu];
        ++iu;
        skip_dead(su, iu);
      } else {
        x = sv.partners[iv];
      }
      bool from_v = false;
      if (iv < sv.partners.size() && sv.partners[iv] == x) {
        from_v = true;
        count += sv.counts[iv];
        ++iv;
        skip_dead(sv, iv);
      }

      FlatClusterState& sx = arena_[x];
      ++goodness_updates_;
      ++relink_partners_;
      const double g = goodness_.Goodness(count, sx.members.size(), nw);
      // x's entries for u/v just died and (w, g) replaces them. The argmax
      // updates in O(1) unless the dying best forces a rescan; ties keep
      // the incumbent, which has the smaller id (w is the largest id yet).
      sx.partners.push_back(w);  // w > every existing id: stays sorted
      sx.counts.push_back(count);
      sx.goodness.push_back(g);
      if (from_u && from_v) {
        sx.live_links -= 1;  // entries for u and v die, one for w is born
      }
      if (sx.best_key == u || sx.best_key == v) {
        RecomputeBest(sx);
      } else if (g > sx.best_priority) {
        sx.best_priority = g;
        sx.best_key = w;
      }
      MaybeCompact(sx);
      touched_.push_back(x);

      sw.partners.push_back(x);  // x ascends across iterations
      sw.counts.push_back(count);
      sw.goodness.push_back(g);
      if (g > sw.best_priority) {  // ascending x ⇒ ties keep the smaller id
        sw.best_priority = g;
        sw.best_key = x;
      }
    }
    sw.live_links = sw.partners.size();
    ReleaseState(su);
    ReleaseState(sv);
    --num_live_;  // two die, one is born
    relink_seconds_ += relink_timer.ElapsedSeconds();

    // Deferred global-heap fixups: each touched x settled its local best
    // above, so one InsertOrUpdate per x closes the merge, and w takes over
    // u's still-present entry in a single sift.
    Timer heap_timer;
    for (ClusterId x : touched_) {
      global_.InsertOrUpdate(x, LocalBest(x));
    }
    global_.ReplaceKey(u, w, LocalBest(w));
    heap_ops_ += touched_.size() + 1;
    heap_seconds_ += heap_timer.ElapsedSeconds();
  }

  void WeedSmallClusters(RockResult* result) {
    std::vector<ClusterId> victims;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (alive_[c] &&
          arena_[c].members.size() < options_.min_cluster_support) {
        victims.push_back(c);
      }
    }
    for (ClusterId c : victims) {
      FlatClusterState& sc = arena_[c];
      result->stats.num_weeded_points += sc.members.size();
      for (PointIndex p : sc.members) weeded_points_.push_back(p);
      alive_[c] = 0;  // partners now skip c's stale entries lazily
      for (size_t i = 0; i < sc.partners.size(); ++i) {
        const ClusterId x = sc.partners[i];
        if (!alive_[x]) continue;
        FlatClusterState& sx = arena_[x];
        --sx.live_links;
        if (sx.best_key == c) RecomputeBest(sx);
        global_.InsertOrUpdate(x, LocalBest(x));
        heap_ops_ += 1;
      }
      global_.Erase(c);
      heap_ops_ += 1;
      ReleaseState(sc);
      --num_live_;
      ++result->stats.num_weeded_clusters;
    }
  }

  /// Re-derives the merge loop's redundant state from first principles and
  /// reports every disagreement. Same checks as the hashed engine
  /// (membership partition, cross-links, goodness, global heap) plus the
  /// flat-layout invariants: strictly ascending partner rows, an exact
  /// live_links census, and the tracked best matching a full argmax
  /// recompute. Uses the hash rows (links.Row) as the oracle — debug
  /// cadence only, never on by default.
  void VerifyBookkeeping(const LinkMatrix& links) {
    invariant_report_.NoteCheck();
    constexpr ClusterId kNoCluster = std::numeric_limits<ClusterId>::max();

    // (a) Live-cluster census and the monotone merge identity: every merge
    // retires two clusters and mints one, weeding only retires.
    size_t live = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (alive_[c]) ++live;
    }
    if (live != num_live_) {
      invariant_report_.Report(
          "merge.live_count", "num_live_ = " + std::to_string(num_live_) +
                                  " but census found " +
                                  std::to_string(live));
    }

    // (b) Membership partition: each unpruned, unweeded point sits in
    // exactly one live cluster.
    std::vector<PointIndex> weeded_sorted = weeded_points_;
    std::sort(weeded_sorted.begin(), weeded_sorted.end());
    std::vector<ClusterId> cluster_of(graph_.size(), kNoCluster);
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (!alive_[c]) continue;
      for (PointIndex p : arena_[c].members) {
        if (cluster_of[p] != kNoCluster) {
          invariant_report_.Report(
              "merge.partition", "point " + std::to_string(p) +
                                     " is in clusters " +
                                     std::to_string(cluster_of[p]) + " and " +
                                     std::to_string(c));
        }
        cluster_of[p] = c;
      }
    }
    for (size_t p = 0; p < graph_.size(); ++p) {
      const bool excluded =
          IsPruned(static_cast<PointIndex>(p)) ||
          std::binary_search(weeded_sorted.begin(), weeded_sorted.end(),
                             static_cast<PointIndex>(p));
      if (excluded == (cluster_of[p] != kNoCluster)) {
        invariant_report_.Report(
            "merge.partition",
            "point " + std::to_string(p) +
                (excluded ? " is pruned/weeded but still clustered"
                          : " is unassigned but not pruned/weeded"));
      }
    }

    for (ClusterId c = 0; c < next_id_; ++c) {
      if (!alive_[c]) continue;
      const FlatClusterState& sc = arena_[c];

      // (c) Flat-layout shape: partner ids strictly ascending, counts and
      // goodness parallel, and live_links equal to the live-entry census.
      if (sc.counts.size() != sc.partners.size() ||
          sc.goodness.size() != sc.partners.size()) {
        invariant_report_.Report(
            "merge.flat_row",
            "cluster " + std::to_string(c) + " has " +
                std::to_string(sc.partners.size()) + " partners but " +
                std::to_string(sc.counts.size()) + " counts / " +
                std::to_string(sc.goodness.size()) + " goodness values");
      }
      size_t live_entries = 0;
      for (size_t i = 0; i < sc.partners.size(); ++i) {
        if (i > 0 && sc.partners[i] <= sc.partners[i - 1]) {
          invariant_report_.Report(
              "merge.flat_row",
              "cluster " + std::to_string(c) + " partner row not strictly " +
                  "ascending at index " + std::to_string(i));
        }
        if (alive_[sc.partners[i]]) ++live_entries;
      }
      if (live_entries != sc.live_links) {
        invariant_report_.Report(
            "merge.flat_row",
            "cluster " + std::to_string(c) + " live_links = " +
                std::to_string(sc.live_links) + " but census found " +
                std::to_string(live_entries));
      }

      // (d) Cross-links against a fresh recount from the point links.
      std::unordered_map<ClusterId, uint64_t> expect;
      for (PointIndex p : sc.members) {
        for (const auto& [q, count] : links.Row(p)) {
          const ClusterId other = cluster_of[q];
          if (other != kNoCluster && other != c) expect[other] += count;
        }
      }
      if (expect.size() != live_entries) {
        invariant_report_.Report(
            "merge.cross_links",
            "cluster " + std::to_string(c) + " tracks " +
                std::to_string(live_entries) + " partners but recount has " +
                std::to_string(expect.size()));
      }
      for (size_t i = 0; i < sc.partners.size(); ++i) {
        const ClusterId other = sc.partners[i];
        if (!alive_[other]) continue;
        auto it = expect.find(other);
        if (it == expect.end() || it->second != sc.counts[i]) {
          invariant_report_.Report(
              "merge.cross_links",
              "link[" + std::to_string(c) + ", " + std::to_string(other) +
                  "] = " + std::to_string(sc.counts[i]) + " but recount = " +
                  (it == expect.end() ? std::string("missing")
                                      : std::to_string(it->second)));
        }
      }

      // (e) Stored goodness values and the tracked argmax: every live
      // entry's goodness recomputes to the stored value, and
      // best_key/best_priority equal a full (priority desc, key asc) scan.
      ClusterId expect_best_key = 0;
      double expect_best_priority = kNoCandidate;
      for (size_t i = 0; i < sc.partners.size(); ++i) {
        const ClusterId other = sc.partners[i];
        if (!alive_[other]) continue;
        const double expected_g = goodness_.Goodness(
            sc.counts[i], sc.members.size(), arena_[other].members.size());
        if (std::abs(sc.goodness[i] - expected_g) >
            1e-9 * (1.0 + std::abs(expected_g))) {
          invariant_report_.Report(
              "merge.goodness",
              "g(" + std::to_string(c) + ", " + std::to_string(other) +
                  ") = " + std::to_string(sc.goodness[i]) +
                  " but recompute = " + std::to_string(expected_g));
        }
        if (sc.goodness[i] > expect_best_priority) {
          expect_best_priority = sc.goodness[i];
          expect_best_key = other;
        }
      }
      if (sc.best_priority != expect_best_priority ||
          (live_entries > 0 && sc.best_key != expect_best_key)) {
        invariant_report_.Report(
            "merge.local_best",
            "cluster " + std::to_string(c) + " tracks best (" +
                std::to_string(sc.best_key) + ", " +
                std::to_string(sc.best_priority) + ") but scan found (" +
                std::to_string(expect_best_key) + ", " +
                std::to_string(expect_best_priority) + ")");
      }

      // (f) Global heap: every live cluster present, keyed by its local
      // best.
      if (!global_.Contains(c)) {
        invariant_report_.Report(
            "merge.global_heap",
            "cluster " + std::to_string(c) + " missing from global heap");
        continue;
      }
      const double expected_best = LocalBest(c);
      const double actual_best = global_.PriorityOf(c);
      if (!(actual_best == expected_best) &&
          std::abs(actual_best - expected_best) >
              1e-9 * (1.0 + std::abs(expected_best))) {
        invariant_report_.Report(
            "merge.global_heap",
            "global priority of " + std::to_string(c) + " = " +
                std::to_string(actual_best) + " but local best = " +
                std::to_string(expected_best));
      }
    }
    if (global_.size() != num_live_) {
      invariant_report_.Report(
          "merge.global_heap",
          "global heap has " + std::to_string(global_.size()) +
              " entries for " + std::to_string(num_live_) +
              " live clusters");
    }
  }

  void BuildClustering(RockResult* result) {
    std::vector<ClusterIndex> assignment(graph_.size(), kUnassigned);
    ClusterIndex next = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (!alive_[c]) continue;
      for (PointIndex p : arena_[c].members) {
        assignment[p] = next;
      }
      ++next;
    }
    result->clustering = Clustering::FromAssignment(std::move(assignment));
    result->clustering.SortBySizeDescending();
  }

  const RockOptions& options_;
  GoodnessMeasure goodness_;
  const NeighborGraph& graph_;

  /// Per-run arena: slab per possible cluster id, allocated once. Slots of
  /// dead clusters are released (vectors freed) but never reused.
  std::vector<FlatClusterState> arena_;
  std::vector<uint8_t> alive_;             // parallel to arena_
  UpdatableHeap<ClusterId, double> global_;
  std::vector<PointIndex> pruned_;         // sorted by construction
  std::vector<PointIndex> weeded_points_;
  std::vector<ClusterId> touched_;         // scratch, reused across merges
  size_t num_live_ = 0;
  ClusterId next_id_ = 0;

  diag::MetricsRegistry* metrics_ = nullptr;  // null → metrics disabled
  diag::InvariantReport invariant_report_;
  size_t check_every_ = 0;  // 0 → invariant checks disabled
  uint64_t goodness_updates_ = 0;
  uint64_t relink_partners_ = 0;
  uint64_t relink_dead_skipped_ = 0;
  uint64_t relink_compactions_ = 0;
  uint64_t best_rescans_ = 0;
  uint64_t heap_ops_ = 0;
  double relink_seconds_ = 0.0;
  double heap_seconds_ = 0.0;
};

}  // namespace

RockResult RunFlatMergeEngine(const NeighborGraph& graph,
                              const RockOptions& options) {
  FlatMergeEngine engine(graph, options);
  return engine.Run();
}

}  // namespace rock::internal
