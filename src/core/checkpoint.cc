#include "core/checkpoint.h"

#include <cstdio>

#include "util/bytes.h"
#include "util/checksum.h"
#include "util/failpoint.h"

namespace rock {

namespace {

constexpr uint64_t kCheckpointMagic = 0x524f434b434b5054ULL;  // "ROCKCKPT"
constexpr uint32_t kCheckpointVersion = 1;
constexpr size_t kHeaderSize =
    sizeof(kCheckpointMagic) + sizeof(kCheckpointVersion) +
    sizeof(uint64_t) + sizeof(uint32_t);

// Caps on serialized counts, mirroring the stores: anything beyond these is
// a corrupt length field, not data, and must not turn into an allocation.
constexpr uint64_t kMaxCheckpointRows = 1ull << 40;
constexpr uint64_t kMaxCheckpointItems = 1u << 24;

constexpr char kReaderContext[] = "checkpoint payload";

void WriteFingerprint(ByteWriter& w, const CheckpointFingerprint& fp) {
  w.Pod(fp.store_count);
  w.Pod(fp.theta);
  w.Pod(fp.num_clusters);
  w.Pod(fp.min_neighbors);
  w.Pod(fp.outlier_stop_multiple);
  w.Pod(fp.min_cluster_support);
  w.Pod(fp.sample_size);
  w.Pod(fp.sample_seed);
  w.Pod(fp.labeling_fraction);
  w.Pod(fp.min_labeling_points);
  w.Pod(fp.labeling_seed);
}

Status ReadFingerprint(ByteReader& r, CheckpointFingerprint* fp) {
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->store_count));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->theta));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->num_clusters));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->min_neighbors));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->outlier_stop_multiple));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->min_cluster_support));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->sample_size));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->sample_seed));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->labeling_fraction));
  ROCK_RETURN_IF_ERROR(r.Pod(&fp->min_labeling_points));
  return r.Pod(&fp->labeling_seed);
}

void WriteStats(ByteWriter& w, const RockStats& s) {
  w.Pod(static_cast<uint64_t>(s.num_points));
  w.Pod(static_cast<uint64_t>(s.num_pruned_points));
  w.Pod(static_cast<uint64_t>(s.num_weeded_clusters));
  w.Pod(static_cast<uint64_t>(s.num_weeded_points));
  w.Pod(static_cast<uint64_t>(s.num_merges));
  w.Pod(s.average_degree);
  w.Pod(static_cast<uint64_t>(s.max_degree));
  w.Pod(s.neighbor_seconds);
  w.Pod(s.link_seconds);
  w.Pod(s.merge_seconds);
  w.Pod(s.total_seconds);
  w.Pod(s.criterion_value);
}

Status ReadStats(ByteReader& r, RockStats* s) {
  uint64_t u = 0;
  ROCK_RETURN_IF_ERROR(r.Pod(&u));
  s->num_points = static_cast<size_t>(u);
  ROCK_RETURN_IF_ERROR(r.Pod(&u));
  s->num_pruned_points = static_cast<size_t>(u);
  ROCK_RETURN_IF_ERROR(r.Pod(&u));
  s->num_weeded_clusters = static_cast<size_t>(u);
  ROCK_RETURN_IF_ERROR(r.Pod(&u));
  s->num_weeded_points = static_cast<size_t>(u);
  ROCK_RETURN_IF_ERROR(r.Pod(&u));
  s->num_merges = static_cast<size_t>(u);
  ROCK_RETURN_IF_ERROR(r.Pod(&s->average_degree));
  ROCK_RETURN_IF_ERROR(r.Pod(&u));
  s->max_degree = static_cast<size_t>(u);
  ROCK_RETURN_IF_ERROR(r.Pod(&s->neighbor_seconds));
  ROCK_RETURN_IF_ERROR(r.Pod(&s->link_seconds));
  ROCK_RETURN_IF_ERROR(r.Pod(&s->merge_seconds));
  ROCK_RETURN_IF_ERROR(r.Pod(&s->total_seconds));
  return r.Pod(&s->criterion_value);
}

std::vector<uint8_t> SerializePayload(const PipelineCheckpoint& cp) {
  ByteWriter w;
  WriteFingerprint(w, cp.fingerprint);

  w.Pod(static_cast<uint64_t>(cp.sample_rows.size()));
  for (uint64_t row : cp.sample_rows) w.Pod(row);

  w.Pod(static_cast<uint64_t>(cp.sample.size()));
  for (const Transaction& tx : cp.sample) {
    w.Pod(static_cast<uint32_t>(tx.size()));
    if (!tx.empty()) {
      w.Write(tx.items().data(), tx.size() * sizeof(ItemId));
    }
  }

  w.Pod(static_cast<uint64_t>(cp.clustering.assignment.size()));
  if (!cp.clustering.assignment.empty()) {
    w.Write(cp.clustering.assignment.data(),
            cp.clustering.assignment.size() * sizeof(ClusterIndex));
  }
  w.Pod(static_cast<uint64_t>(cp.clustering.clusters.size()));
  for (const auto& members : cp.clustering.clusters) {
    w.Pod(static_cast<uint64_t>(members.size()));
    if (!members.empty()) {
      w.Write(members.data(), members.size() * sizeof(PointIndex));
    }
  }

  w.Pod(static_cast<uint64_t>(cp.merges.size()));
  for (const MergeRecord& m : cp.merges) {
    w.Pod(m.left);
    w.Pod(m.right);
    w.Pod(m.merged);
    w.Pod(m.goodness);
    w.Pod(static_cast<uint64_t>(m.new_size));
  }
  WriteStats(w, cp.stats);

  w.Pod(cp.num_shards);
  if (!cp.shard_done.empty()) {
    w.Write(cp.shard_done.data(), cp.shard_done.size());
  }
  for (const auto& s : cp.shard_stats) {
    w.Pod(s.clusters_pruned);
    w.Pod(s.clusters_scored);
    w.Pod(s.points_skipped_length);
    w.Pod(s.similarities_computed);
  }
  for (uint64_t o : cp.shard_outliers) w.Pod(o);

  w.Pod(static_cast<uint64_t>(cp.assignments.size()));
  if (!cp.assignments.empty()) {
    w.Write(cp.assignments.data(),
            cp.assignments.size() * sizeof(ClusterIndex));
  }
  w.Pod(static_cast<uint64_t>(cp.ground_truth.size()));
  if (!cp.ground_truth.empty()) {
    w.Write(cp.ground_truth.data(), cp.ground_truth.size() * sizeof(LabelId));
  }
  return std::move(w.buf);
}

Status ParsePayload(const uint8_t* data, size_t size, PipelineCheckpoint* cp) {
  ByteReader r{data, size, 0, kReaderContext};
  ROCK_RETURN_IF_ERROR(ReadFingerprint(r, &cp->fingerprint));

  uint64_t count = 0;
  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > r.Remaining() / sizeof(uint64_t)) {
    return Status::Corruption("implausible checkpoint sample-row count");
  }
  cp->sample_rows.resize(static_cast<size_t>(count));
  if (count > 0) {
    ROCK_RETURN_IF_ERROR(r.Read(cp->sample_rows.data(),
                                static_cast<size_t>(count) * sizeof(uint64_t)));
  }

  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > r.Remaining()) {  // every transaction takes ≥ 4 bytes
    return Status::Corruption("implausible checkpoint sample count");
  }
  cp->sample.clear();
  cp->sample.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t n = 0;
    ROCK_RETURN_IF_ERROR(r.Pod(&n));
    if (n > kMaxCheckpointItems ||
        static_cast<size_t>(n) * sizeof(ItemId) > r.Remaining()) {
      return Status::Corruption("implausible checkpoint transaction length");
    }
    std::vector<ItemId> items(n);
    if (n > 0) {
      ROCK_RETURN_IF_ERROR(
          r.Read(items.data(), static_cast<size_t>(n) * sizeof(ItemId)));
    }
    cp->sample.emplace_back(std::move(items));
  }

  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > r.Remaining() / sizeof(ClusterIndex)) {
    return Status::Corruption("implausible checkpoint assignment size");
  }
  cp->clustering.assignment.resize(static_cast<size_t>(count));
  if (count > 0) {
    ROCK_RETURN_IF_ERROR(
        r.Read(cp->clustering.assignment.data(),
               static_cast<size_t>(count) * sizeof(ClusterIndex)));
  }
  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > r.Remaining()) {  // every cluster takes ≥ 8 bytes
    return Status::Corruption("implausible checkpoint cluster count");
  }
  cp->clustering.clusters.clear();
  cp->clustering.clusters.resize(static_cast<size_t>(count));
  for (auto& members : cp->clustering.clusters) {
    uint64_t n = 0;
    ROCK_RETURN_IF_ERROR(r.Pod(&n));
    if (n > r.Remaining() / sizeof(PointIndex)) {
      return Status::Corruption("implausible checkpoint cluster size");
    }
    members.resize(static_cast<size_t>(n));
    if (n > 0) {
      ROCK_RETURN_IF_ERROR(r.Read(
          members.data(), static_cast<size_t>(n) * sizeof(PointIndex)));
    }
  }

  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > r.Remaining()) {  // every merge record takes ≥ 28 bytes
    return Status::Corruption("implausible checkpoint merge count");
  }
  cp->merges.clear();
  cp->merges.resize(static_cast<size_t>(count));
  for (MergeRecord& m : cp->merges) {
    uint64_t new_size = 0;
    ROCK_RETURN_IF_ERROR(r.Pod(&m.left));
    ROCK_RETURN_IF_ERROR(r.Pod(&m.right));
    ROCK_RETURN_IF_ERROR(r.Pod(&m.merged));
    ROCK_RETURN_IF_ERROR(r.Pod(&m.goodness));
    ROCK_RETURN_IF_ERROR(r.Pod(&new_size));
    m.new_size = static_cast<size_t>(new_size);
  }
  ROCK_RETURN_IF_ERROR(ReadStats(r, &cp->stats));

  ROCK_RETURN_IF_ERROR(r.Pod(&cp->num_shards));
  if (cp->num_shards > r.Remaining()) {  // ≥ 1 byte per shard follows
    return Status::Corruption("implausible checkpoint shard count");
  }
  const size_t shards = static_cast<size_t>(cp->num_shards);
  cp->shard_done.resize(shards);
  if (shards > 0) {
    ROCK_RETURN_IF_ERROR(r.Read(cp->shard_done.data(), shards));
  }
  cp->shard_stats.clear();
  cp->shard_stats.resize(shards);
  for (auto& s : cp->shard_stats) {
    ROCK_RETURN_IF_ERROR(r.Pod(&s.clusters_pruned));
    ROCK_RETURN_IF_ERROR(r.Pod(&s.clusters_scored));
    ROCK_RETURN_IF_ERROR(r.Pod(&s.points_skipped_length));
    ROCK_RETURN_IF_ERROR(r.Pod(&s.similarities_computed));
  }
  cp->shard_outliers.resize(shards);
  for (auto& o : cp->shard_outliers) {
    ROCK_RETURN_IF_ERROR(r.Pod(&o));
  }

  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > kMaxCheckpointRows ||
      count > r.Remaining() / sizeof(ClusterIndex)) {
    return Status::Corruption("implausible checkpoint assignments size");
  }
  cp->assignments.resize(static_cast<size_t>(count));
  if (count > 0) {
    ROCK_RETURN_IF_ERROR(
        r.Read(cp->assignments.data(),
               static_cast<size_t>(count) * sizeof(ClusterIndex)));
  }
  ROCK_RETURN_IF_ERROR(r.Pod(&count));
  if (count > r.Remaining() / sizeof(LabelId)) {
    return Status::Corruption("implausible checkpoint ground-truth size");
  }
  cp->ground_truth.resize(static_cast<size_t>(count));
  if (count > 0) {
    ROCK_RETURN_IF_ERROR(r.Read(cp->ground_truth.data(),
                                static_cast<size_t>(count) * sizeof(LabelId)));
  }

  if (r.Remaining() != 0) {
    return Status::Corruption("trailing bytes after checkpoint payload");
  }

  // Cross-field consistency: the shard vectors and row arrays must agree
  // with the counts the fingerprint pins, or resume would index out of
  // bounds.
  if (cp->assignments.size() != cp->fingerprint.store_count ||
      cp->ground_truth.size() != cp->fingerprint.store_count) {
    return Status::Corruption(
        "checkpoint row arrays do not match the store count");
  }
  if (cp->sample.size() != cp->sample_rows.size()) {
    return Status::Corruption(
        "checkpoint sample rows and transactions disagree");
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const PipelineCheckpoint& checkpoint,
                      const std::string& path) {
  const std::vector<uint8_t> payload = SerializePayload(checkpoint);

  ByteWriter file;
  file.buf.reserve(kHeaderSize + payload.size());
  file.Pod(kCheckpointMagic);
  file.Pod(kCheckpointVersion);
  file.Pod(static_cast<uint64_t>(payload.size()));
  file.Pod(Crc32(payload.data(), payload.size()));
  file.Write(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  switch (fail::Consult("pipeline.checkpoint")) {
    case fail::Action::kNone:
      break;
    case fail::Action::kTornWrite:
      // A filesystem without atomic rename tearing the checkpoint: half
      // the bytes land at the *final* path.
      ROCK_RETURN_IF_ERROR(
          WriteFileBytes(path, file.buf.data(), file.buf.size() / 2));
      return fail::InjectedError("pipeline.checkpoint");
    case fail::Action::kCrash:
      // Death between writing the tmp file and renaming it: the tmp file
      // is complete but the final path never updates.
      ROCK_RETURN_IF_ERROR(
          WriteFileBytes(tmp, file.buf.data(), file.buf.size()));
      return fail::InjectedCrash("pipeline.checkpoint");
    case fail::Action::kError:
    case fail::Action::kShortRead:
      return fail::InjectedError("pipeline.checkpoint");
  }

  ROCK_RETURN_IF_ERROR(WriteFileBytes(tmp, file.buf.data(), file.buf.size()));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename '" + tmp + "' over '" + path + "'");
  }
  return Status::OK();
}

Result<PipelineCheckpoint> LoadCheckpoint(const std::string& path) {
  ROCK_RETURN_IF_ERROR(fail::ConsultRead("checkpoint.load"));
  Result<std::vector<uint8_t>> bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t> bytes = std::move(bytes_or).value();

  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("checkpoint file '" + path + "' is truncated");
  }
  ByteReader header{bytes.data(), kHeaderSize, 0, kReaderContext};
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint32_t expected_crc = 0;
  ROCK_RETURN_IF_ERROR(header.Pod(&magic));
  if (magic != kCheckpointMagic) {
    return Status::Corruption("'" + path + "' is not a pipeline checkpoint");
  }
  ROCK_RETURN_IF_ERROR(header.Pod(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }
  ROCK_RETURN_IF_ERROR(header.Pod(&payload_size));
  ROCK_RETURN_IF_ERROR(header.Pod(&expected_crc));
  if (payload_size != bytes.size() - kHeaderSize) {
    return Status::Corruption("checkpoint '" + path +
                              "' payload size mismatch (torn write)");
  }
  const uint8_t* payload = bytes.data() + kHeaderSize;
  if (Crc32(payload, static_cast<size_t>(payload_size)) != expected_crc) {
    return Status::Corruption("checkpoint '" + path +
                              "' checksum mismatch (bit rot or torn write)");
  }

  PipelineCheckpoint cp;
  ROCK_RETURN_IF_ERROR(
      ParsePayload(payload, static_cast<size_t>(payload_size), &cp));
  return cp;
}

}  // namespace rock
