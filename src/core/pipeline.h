// librock — core/pipeline.h
//
// End-to-end ROCK pipeline over an on-disk database (paper Fig. 2):
// draw random sample → cluster sample with links → label data on disk.
// This is the entry point the scalability (Fig. 5) and labeling-quality
// (Table 6) experiments drive.

#ifndef ROCK_CORE_PIPELINE_H_
#define ROCK_CORE_PIPELINE_H_

#include <string>

#include "common/status.h"
#include "core/labeling.h"
#include "core/rock.h"
#include "util/retry.h"

namespace rock {

/// Options for a full disk-backed pipeline run.
struct PipelineOptions {
  RockOptions rock;          ///< θ, k, f, outlier handling
  size_t sample_size = 1000; ///< points drawn into memory (reservoir);
                             ///< clamped to the store size when larger
  LabelingOptions labeling;  ///< L_i construction
  uint64_t seed = 42;        ///< sampling seed

  /// When non-empty, the labeling phase persists a checkpoint here after
  /// every completed shard (core/checkpoint.h) and deletes it once the run
  /// finishes. Enables `resume`.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path` if it holds a valid checkpoint whose
  /// fingerprint matches this run: the sample clustering is reused and
  /// completed label shards are skipped. A missing, torn, corrupt or
  /// mismatched checkpoint falls back to a clean fresh run (recorded under
  /// checkpoint.missing / checkpoint.invalid / checkpoint.mismatch).
  bool resume = false;
  /// Transient-I/O retry schedule for every store/checkpoint access
  /// (docs/ROBUSTNESS.md).
  RetryPolicy retry;
  /// Injectable sleeper for the retry backoff (tests; nullptr = real).
  RetrySleeper retry_sleeper = nullptr;
};

/// Result of a full pipeline run.
struct PipelineResult {
  /// Clustering of the in-memory sample.
  RockResult sample_result;
  /// Store row positions of the sampled transactions (sorted).
  std::vector<uint64_t> sample_rows;
  /// Labeling of the entire store (one entry per store row).
  LabelingRunResult labeling;
  /// Seconds spent drawing the sample / clustering / labeling. The paper's
  /// Fig. 5 "execution time" excludes the final labeling phase, so the
  /// benches report cluster_seconds separately.
  double sample_seconds = 0.0;
  double cluster_seconds = 0.0;
  double label_seconds = 0.0;
  /// True when the sample clustering was restored from a checkpoint
  /// instead of recomputed (sample/cluster seconds are then 0).
  bool resumed = false;
  /// Label shards restored from the checkpoint instead of rescanned
  /// (mirror of labeling.shards_skipped).
  size_t shards_skipped = 0;
  /// Per-stage metrics for the whole pipeline: the clusterer's report
  /// (stage.neighbors/links/merge/total plus graph/link/merge counters)
  /// merged with the pipeline's own stage.sample / stage.label timers and
  /// sample/label counters. Empty when options.rock.diag disables
  /// collection. Names are cataloged in docs/OBSERVABILITY.md.
  diag::RunMetrics metrics;
};

/// Runs sample → cluster → label against a transaction store file.
/// The sample is drawn with one streaming reservoir pass; labeling makes a
/// second streaming pass. A sample_size larger than the store clamps to
/// the store size (recorded as sample.clamped); an empty store is
/// InvalidArgument. With checkpoint_path set the run is crash-safe: it can
/// be re-invoked with resume=true after any interruption and completes
/// with output bit-identical to an uninterrupted run.
Result<PipelineResult> RunRockPipeline(const std::string& store_path,
                                       const PipelineOptions& options);

}  // namespace rock

#endif  // ROCK_CORE_PIPELINE_H_
