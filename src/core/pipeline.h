// librock — core/pipeline.h
//
// End-to-end ROCK pipeline over an on-disk database (paper Fig. 2):
// draw random sample → cluster sample with links → label data on disk.
// This is the entry point the scalability (Fig. 5) and labeling-quality
// (Table 6) experiments drive.
//
// The pipeline is split into two halves sharing one sample+cluster phase:
//
//   BuildModel      — sample → cluster → build the §4.6 labeler, and
//                     persist it as a versioned+CRC'd model bundle
//                     (core/model_bundle.h) for the serve layer.
//   RunRockPipeline — the batch path: the same sample+cluster phase
//                     followed by the sharded labeling scan over the whole
//                     store, with crash-safe checkpoint/resume.
//
// Both halves draw the sample and cluster it through the same code path,
// so a served model's per-row assignments are bit-identical to what the
// batch pipeline writes for the same store and options.

#ifndef ROCK_CORE_PIPELINE_H_
#define ROCK_CORE_PIPELINE_H_

#include <string>

#include "common/status.h"
#include "core/labeling.h"
#include "core/model_bundle.h"
#include "core/rock.h"
#include "data/dictionary.h"
#include "util/retry.h"

namespace rock {

/// Options for a full disk-backed pipeline run.
struct PipelineOptions {
  RockOptions rock;          ///< θ, k, f, outlier handling
  size_t sample_size = 1000; ///< points drawn into memory (reservoir);
                             ///< clamped to the store size when larger
  LabelingOptions labeling;  ///< L_i construction
  uint64_t seed = 42;        ///< sampling seed

  /// When non-empty, the labeling phase persists a checkpoint here after
  /// every completed shard (core/checkpoint.h) and deletes it once the run
  /// finishes. Enables `resume`.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path` if it holds a valid checkpoint whose
  /// fingerprint matches this run: the sample clustering is reused and
  /// completed label shards are skipped. A missing, torn, corrupt or
  /// mismatched checkpoint falls back to a clean fresh run (recorded under
  /// checkpoint.missing / checkpoint.invalid / checkpoint.mismatch).
  bool resume = false;
  /// Transient-I/O retry schedule for every store/checkpoint access
  /// (docs/ROBUSTNESS.md).
  RetryPolicy retry;
  /// Injectable sleeper for the retry backoff (tests; nullptr = real).
  RetrySleeper retry_sleeper = nullptr;
};

/// Result of a full pipeline run.
struct PipelineResult {
  /// Clustering of the in-memory sample.
  RockResult sample_result;
  /// Store row positions of the sampled transactions (sorted).
  std::vector<uint64_t> sample_rows;
  /// Labeling of the entire store (one entry per store row).
  LabelingRunResult labeling;
  /// Seconds spent drawing the sample / clustering / labeling. The paper's
  /// Fig. 5 "execution time" excludes the final labeling phase, so the
  /// benches report cluster_seconds separately.
  double sample_seconds = 0.0;
  double cluster_seconds = 0.0;
  double label_seconds = 0.0;
  /// True when the sample clustering was restored from a checkpoint
  /// instead of recomputed (sample/cluster seconds are then 0).
  bool resumed = false;
  /// Label shards restored from the checkpoint instead of rescanned
  /// (mirror of labeling.shards_skipped).
  size_t shards_skipped = 0;
  /// Per-stage metrics for the whole pipeline: the clusterer's report
  /// (stage.neighbors/links/merge/total plus graph/link/merge counters)
  /// merged with the pipeline's own stage.sample / stage.label timers and
  /// sample/label counters. Empty when options.rock.diag disables
  /// collection. Names are cataloged in docs/OBSERVABILITY.md.
  diag::RunMetrics metrics;
};

/// Runs sample → cluster → label against a transaction store file.
/// The sample is drawn with one streaming reservoir pass; labeling makes a
/// second streaming pass. A sample_size larger than the store clamps to
/// the store size (recorded as sample.clamped); an empty store is
/// InvalidArgument. With checkpoint_path set the run is crash-safe: it can
/// be re-invoked with resume=true after any interruption and completes
/// with output bit-identical to an uninterrupted run.
Result<PipelineResult> RunRockPipeline(const std::string& store_path,
                                       const PipelineOptions& options);

/// Options for the build half of the pipeline.
struct ModelBuildOptions {
  /// Sampling, clustering and labeling-set parameters. When
  /// `pipeline.checkpoint_path` is set, the sample+cluster phase is
  /// persisted there (shard-free checkpoint, core/checkpoint.h) before the
  /// bundle is written, and `pipeline.resume` restores it — so a rebuild
  /// that crashes between clustering and the model swap resumes without
  /// re-clustering and produces a byte-identical bundle. The checkpoint is
  /// removed once the bundle is safely on disk.
  PipelineOptions pipeline;
  /// When non-empty, the bundle is persisted here (atomic tmp+rename,
  /// retried under pipeline.retry). A failed save fails the build.
  std::string model_path;
  /// Item names for the bundle, when the caller still has the dataset the
  /// store was written from. nullptr → id-mode bundle (stores persist only
  /// item ids), and serve queries are numeric ids.
  const Dictionary* dictionary = nullptr;
};

/// Result of BuildModel.
struct ModelBuildResult {
  /// The model: labeling sets, θ, f(θ), dictionary, run fingerprint.
  ModelBundle bundle;
  /// Clustering of the in-memory sample (diagnostics; the bundle already
  /// holds everything the serve layer needs).
  RockResult sample_result;
  /// Store row positions of the sampled transactions (sorted).
  std::vector<uint64_t> sample_rows;
  double sample_seconds = 0.0;
  double cluster_seconds = 0.0;
  /// Labeler construction + profile + bundle save.
  double build_seconds = 0.0;
  /// True when the sample clustering was restored from a checkpoint
  /// instead of recomputed (build.resumed).
  bool resumed = false;
  /// stage.sample / stage.build timers, sample counters and the clusterer's
  /// report, as in PipelineResult::metrics.
  diag::RunMetrics metrics;
};

/// The build half of the pipeline: sample → cluster → build labeling sets,
/// without the whole-store labeling scan. Same sample+cluster phase as
/// RunRockPipeline — a server answering from the returned bundle assigns
/// every store row the exact cluster the batch pipeline would.
Result<ModelBuildResult> BuildModel(const std::string& store_path,
                                    const ModelBuildOptions& options);

}  // namespace rock

#endif  // ROCK_CORE_PIPELINE_H_
