// librock — core/pipeline.h
//
// End-to-end ROCK pipeline over an on-disk database (paper Fig. 2):
// draw random sample → cluster sample with links → label data on disk.
// This is the entry point the scalability (Fig. 5) and labeling-quality
// (Table 6) experiments drive.

#ifndef ROCK_CORE_PIPELINE_H_
#define ROCK_CORE_PIPELINE_H_

#include <string>

#include "common/status.h"
#include "core/labeling.h"
#include "core/rock.h"

namespace rock {

/// Options for a full disk-backed pipeline run.
struct PipelineOptions {
  RockOptions rock;          ///< θ, k, f, outlier handling
  size_t sample_size = 1000; ///< points drawn into memory (reservoir)
  LabelingOptions labeling;  ///< L_i construction
  uint64_t seed = 42;        ///< sampling seed
};

/// Result of a full pipeline run.
struct PipelineResult {
  /// Clustering of the in-memory sample.
  RockResult sample_result;
  /// Store row positions of the sampled transactions (sorted).
  std::vector<uint64_t> sample_rows;
  /// Labeling of the entire store (one entry per store row).
  LabelingRunResult labeling;
  /// Seconds spent drawing the sample / clustering / labeling. The paper's
  /// Fig. 5 "execution time" excludes the final labeling phase, so the
  /// benches report cluster_seconds separately.
  double sample_seconds = 0.0;
  double cluster_seconds = 0.0;
  double label_seconds = 0.0;
  /// Per-stage metrics for the whole pipeline: the clusterer's report
  /// (stage.neighbors/links/merge/total plus graph/link/merge counters)
  /// merged with the pipeline's own stage.sample / stage.label timers and
  /// sample/label counters. Empty when options.rock.diag disables
  /// collection. Names are cataloged in docs/OBSERVABILITY.md.
  diag::RunMetrics metrics;
};

/// Runs sample → cluster → label against a transaction store file.
/// The sample is drawn with one streaming reservoir pass; labeling makes a
/// second streaming pass. Fails if the store has fewer rows than
/// `options.sample_size`.
Result<PipelineResult> RunRockPipeline(const std::string& store_path,
                                       const PipelineOptions& options);

}  // namespace rock

#endif  // ROCK_CORE_PIPELINE_H_
