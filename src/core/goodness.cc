#include "core/goodness.h"

#include <cmath>

namespace rock {

double GoodnessMeasure::GrowAndGet(size_t n) const {
  // Grow geometrically so a slowly rising size ceiling (cluster sizes climb
  // one merge at a time) costs O(n) pow calls total, not O(n) per call.
  size_t new_size = table_.empty() ? 16 : table_.size();
  while (new_size <= n) new_size *= 2;
  const size_t old_size = table_.size();
  table_.resize(new_size);
  for (size_t i = old_size; i < new_size; ++i) {
    table_[i] = std::pow(static_cast<double>(i), exponent_);
  }
  return table_[n];
}

double GoodnessMeasure::ExpectedCrossLinks(size_t ni, size_t nj) const {
  return ExpectedIntraLinks(ni + nj) - ExpectedIntraLinks(ni) -
         ExpectedIntraLinks(nj);
}

double GoodnessMeasure::Goodness(uint64_t cross_links, size_t ni,
                                 size_t nj) const {
  const double expected = ExpectedCrossLinks(ni, nj);
  // exponent >= 1 makes x^e strictly superadditive, so expected > 0 for
  // ni, nj >= 1; guard anyway for degenerate f.
  if (expected <= 0.0) return 0.0;
  return static_cast<double>(cross_links) / expected;
}

}  // namespace rock
