#include "core/goodness.h"

#include <cmath>

namespace rock {

double GoodnessMeasure::ExpectedIntraLinks(size_t n) const {
  return std::pow(static_cast<double>(n), exponent_);
}

double GoodnessMeasure::ExpectedCrossLinks(size_t ni, size_t nj) const {
  return ExpectedIntraLinks(ni + nj) - ExpectedIntraLinks(ni) -
         ExpectedIntraLinks(nj);
}

double GoodnessMeasure::Goodness(uint64_t cross_links, size_t ni,
                                 size_t nj) const {
  const double expected = ExpectedCrossLinks(ni, nj);
  // exponent >= 1 makes x^e strictly superadditive, so expected > 0 for
  // ni, nj >= 1; guard anyway for degenerate f.
  if (expected <= 0.0) return 0.0;
  return static_cast<double>(cross_links) / expected;
}

}  // namespace rock
