// librock — core/merge_engine.h (internal)
//
// The three interchangeable implementations of the Fig. 3 agglomerative
// merge loop. All consume a prebuilt neighbor graph, run the link phase,
// and return a complete RockResult; they differ only in data layout and
// scheduling:
//
//   * parallel — interleaved (AoS) partner rows, elided no-op global-heap
//                fixups, and a three-way sorted relink that shards into
//                disjoint partner-id ranges over a persistent worker pool
//                when RockOptions::merge_threads > 1. The default engine
//                (core/merge_parallel.cc, DESIGN.md §12).
//   * flat     — CSR link rows (LinkMatrix::Freeze), sorted flat
//                partner/count vectors per cluster with lazy dead-entry
//                removal, per-run arena-allocated cluster slabs, and
//                batched heap updates (core/merge_flat.cc). Kept as a
//                second oracle and the perf-gate baseline.
//   * hashed   — per-cluster std::unordered_map link tables, the original
//                layout. Kept behind the same API as the reference oracle
//                for differential tests and perf baselines
//                (core/merge_hashed.cc).
//
// Results are bit-identical: the merge sequence, clustering, stats, and
// invariant-check outcomes agree element for element (enforced by
// tests/diag_differential_test.cc). RockClusterer dispatches on
// RockOptions::merge_engine; this header is not part of the public API.

#ifndef ROCK_CORE_MERGE_ENGINE_H_
#define ROCK_CORE_MERGE_ENGINE_H_

#include "core/rock.h"

namespace rock::internal {

/// Runs the flat-layout merge engine (CSR rows, sorted-merge relinking).
RockResult RunFlatMergeEngine(const NeighborGraph& graph,
                              const RockOptions& options);

/// Runs the original hash-table merge engine (reference oracle).
RockResult RunHashedMergeEngine(const NeighborGraph& graph,
                                const RockOptions& options);

/// Runs the parallel sharded merge engine (interleaved rows, elided heap
/// fixups, relink fan-out over RockOptions::merge_threads) — the default.
RockResult RunParallelMergeEngine(const NeighborGraph& graph,
                                  const RockOptions& options);

/// Link phase shared by both merge engines: dispatches on
/// RockOptions::link_engine (bit-plane popcount engine vs the Fig. 4
/// hashed scatter, graph/link_engine.h vs graph/links.cc) with the run's
/// thread count and metrics sink threaded through. Either engine yields a
/// matrix with byte-identical frozen CSR rows; the packed one returns it
/// already frozen.
LinkMatrix ComputeLinkStage(const NeighborGraph& graph,
                            const RockOptions& options,
                            diag::MetricsRegistry* metrics);

}  // namespace rock::internal

#endif  // ROCK_CORE_MERGE_ENGINE_H_
