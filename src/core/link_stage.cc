// The merge engines' shared link phase: RockOptions::link_engine decides
// whether Fig. 4 runs through the bit-plane popcount engine or the original
// hashed scatter (see core/merge_engine.h).

#include "core/merge_engine.h"
#include "graph/link_engine.h"
#include "graph/parallel.h"

namespace rock::internal {

LinkMatrix ComputeLinkStage(const NeighborGraph& graph,
                            const RockOptions& options,
                            diag::MetricsRegistry* metrics) {
  const size_t graph_threads = options.EffectiveGraphThreads();
  if (options.link_engine == LinkEngineKind::kPacked) {
    PackedLinkOptions packed;
    packed.num_threads = graph_threads;
    packed.row_chunk = options.row_chunk;
    packed.metrics = metrics;
    return ComputeLinksPacked(graph, packed);
  }
  return graph_threads == 1
             ? ComputeLinks(graph)
             : ComputeLinksParallel(graph,
                                    {graph_threads, options.row_chunk});
}

}  // namespace rock::internal
