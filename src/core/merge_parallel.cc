// librock — core/merge_parallel.cc
//
// The parallel sharded merge engine (the default; DESIGN.md §12). Same
// Fig. 3 algorithm and byte-identical results as the flat and hashed
// engines (core/merge_flat.cc, core/merge_hashed.cc); the greedy merge
// *sequence* stays serial — it is inherently so — and the per-merge work
// is restructured for throughput:
//
//   * Interleaved rows: each cluster's cross-links live in one vector of
//     24-byte RowEntry{partner, count, goodness} records instead of three
//     parallel vectors. The per-partner scatter append into an arbitrary
//     cluster's row touches one cache line instead of three — the relink
//     is memory-bound on exactly that scatter.
//   * Memoized goodness: GoodnessMeasure serves size^{1+2f(θ)} from a
//     table (Reserve()d to the id ceiling up front, so shard workers read
//     it race-free), and the merged cluster's own term is hoisted out of
//     the relink loop. The remaining per-partner cost is two table loads,
//     two subtractions and one division, evaluated in the exact same
//     operation order as GoodnessMeasure::Goodness — bit-identical values.
//   * Lazy best cleaning: on real data the merging pair (u, v) is each
//     touched neighbor's own best partner almost every time (the pair
//     with globally maximal goodness sits inside a natural cluster, and
//     so do its neighbors), so the flat engine's "rescan when the best
//     dies" fires on ~99% of touches — ~1.6M full row scans on the n=5k
//     basket benchmark, the entire merge-stage bottleneck. Here a cluster
//     whose best died is just marked dirty, keeping max(old best, new
//     goodness) as its stored priority — a provable upper bound on its
//     true best (dead entries only remove candidates; the one new entry
//     is folded in). A dirty cluster is cleaned (one rescan + one heap
//     fixup) only when it surfaces at the heap top. Because no stored
//     priority ever understates a true best, cleaning the top until it
//     is clean pops exactly the cluster the eager engines pop — same
//     priority, same (priority desc, key asc) tie-break — so the merge
//     sequence is byte-identical while O(row) rescans collapse to O(1)
//     dirty marks.
//   * Elided heap fixups: a global-heap InsertOrUpdate is emitted only
//     when a partner's stored priority actually changed. An update to an
//     unchanged priority is a content no-op, and heap *content* is all
//     that can affect results (the strict total order has a unique
//     maximum), so eliding them is invisible. With lazy cleaning the
//     stored priority moves only when the upper bound rises, so most
//     heap traffic disappears outright.
//   * Sharded relink (merge_threads > 1): the three-way sorted merge of
//     u's and v's rows is split into disjoint partner-id ranges. Each
//     shard relinks its range into per-shard scratch (its own slice of
//     the merged row, its own changed-best list, its own counters);
//     partner-side mutations are disjoint because a partner id belongs to
//     exactly one shard. Scratch is stitched back together in shard (=
//     ascending id) order, per-shard bests are folded left-to-right with
//     the same strict > the serial scan uses, and heap fixups are applied
//     serially afterwards — the result is provably independent of the
//     shard count, so any merge_threads value yields byte-identical runs.
//   * A persistent condvar-parked worker pool executes the shards.
//     Fork-join per merge would dwarf the work; parking keeps idle
//     workers silent, and relinks smaller than merge_shard_min never
//     touch the pool at all (the serial loop is faster for them).
//   * Periodic compaction sweep: every kSweepInterval merges the arena is
//     walked in parallel chunks and rows dominated by stale entries are
//     compacted — catching rows that went stale through weeding, which
//     the per-touch compaction cannot see.
//
// Metrics beyond the flat engine's set: merge.shards, merge.parallel_
// relinks, merge.compact_sweeps, stage.merge.relink.parallel and the
// merge.threads gauge (docs/OBSERVABILITY.md).

#include <algorithm>
#include <cassert>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/criterion.h"
#include "core/merge_engine.h"
#include "diag/invariants.h"
#include "util/thread_pool.h"
#include "util/updatable_heap.h"

namespace rock::internal {

namespace {

/// Internal cluster id. Initial clusters take ids 0 … n−1; every merge mints
/// the next id, so ids never exceed 2n−1.
using ClusterId = uint32_t;

constexpr double kNoCandidate = -std::numeric_limits<double>::infinity();

/// Merges between periodic dead-entry compaction sweeps.
constexpr size_t kSweepInterval = 512;

/// One cross-link record: partner id, link count, cached goodness. The
/// interleaved layout makes the scatter append into a partner's row a
/// single cache-line touch.
struct RowEntry {
  ClusterId partner;
  uint64_t count;
  double goodness;
};

/// Bookkeeping for one cluster. `row` is in strictly ascending partner-id
/// order; entries whose partner has died (alive bitmap) are stale and
/// skipped lazily, so only `live_links` of them are meaningful.
/// `best_key`/`best_priority` replace the paper's local heap as in the
/// flat engine — except when `dirty` is set, in which case best_priority
/// is only an upper bound on the true best (and best_key is meaningless)
/// until the cluster is cleaned at the heap top.
struct ParClusterState {
  std::vector<PointIndex> members;  // sorted point ids
  std::vector<RowEntry> row;        // ascending partners; may contain dead
  size_t live_links = 0;            // entries whose partner is alive
  ClusterId best_key = 0;
  double best_priority = -std::numeric_limits<double>::infinity();
  bool dirty = false;               // best died; priority is an upper bound
};

using HeapEntry = UpdatableHeap<ClusterId, double>::Entry;

/// A persistent pool of condvar-parked workers executing shard jobs.
/// Run(num_shards, job) has the caller participate; shards are claimed
/// under the mutex (shards are coarse, so two lock round-trips per shard
/// are noise, and mutex claiming kills the stale-worker/stolen-shard race
/// an atomic counter would invite across epochs). Parked workers cost
/// nothing between merges — essential when merge_threads exceeds the
/// physical core count.
class ShardPool {
 public:
  explicit ShardPool(size_t num_threads) {
    for (size_t t = 1; t < num_threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ShardPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Runs job(shard) for every shard in [0, num_shards), returning once
  /// all shards completed. Must not be re-entered.
  void Run(size_t num_shards, const std::function<void(size_t)>& job) {
    if (workers_.empty() || num_shards <= 1) {
      for (size_t s = 0; s < num_shards; ++s) job(s);
      return;
    }
    uint64_t my_epoch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      num_shards_ = num_shards;
      next_shard_ = 0;
      remaining_ = num_shards;
      my_epoch = ++epoch_;
    }
    cv_.notify_all();
    Drain(my_epoch, job);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  /// Claims and runs shards of `epoch` until none remain.
  void Drain(uint64_t epoch, const std::function<void(size_t)>& job) {
    while (true) {
      size_t s;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (epoch_ != epoch || next_shard_ >= num_shards_) return;
        s = next_shard_++;
      }
      job(s);
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }

  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    while (true) {
      const std::function<void(size_t)>* job;
      uint64_t epoch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [&] { return shutdown_ || epoch_ != seen_epoch; });
        if (shutdown_) return;
        seen_epoch = epoch_;
        epoch = epoch_;
        job = job_;
      }
      if (job != nullptr) Drain(epoch, *job);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers on a new epoch
  std::condition_variable done_cv_;  // wakes the caller on completion
  std::vector<std::thread> workers_;
  const std::function<void(size_t)>* job_ = nullptr;  // guarded by mu_
  size_t num_shards_ = 0;                             // guarded by mu_
  size_t next_shard_ = 0;                             // guarded by mu_
  size_t remaining_ = 0;                              // guarded by mu_
  uint64_t epoch_ = 0;                                // guarded by mu_
  bool shutdown_ = false;                             // guarded by mu_
};

class ParallelMergeEngine {
 public:
  ParallelMergeEngine(const NeighborGraph& graph, const RockOptions& options)
      : options_(options),
        goodness_(options),
        graph_(graph),
        threads_(ResolveThreads(options.merge_threads)) {}

  RockResult Run() {
    Timer total_timer;
    RockResult result;
    result.stats.num_points = graph_.size();
    result.stats.average_degree = graph_.AverageDegree();
    result.stats.max_degree = graph_.MaxDegree();

    diag::MetricsRegistry registry;
    metrics_ = options_.diag.collect_metrics ? &registry : nullptr;
    check_every_ =
        diag::InvariantCheckInterval(options_.diag.invariant_check_every);

    PruneIsolatedPoints();
    result.stats.num_pruned_points = pruned_.size();

    Timer link_timer;
    LinkMatrix links = ComputeLinkStage(graph_, options_, metrics_);
    links.Freeze();  // CSR layout for the init scans (packed: already built)
    result.stats.link_seconds = link_timer.ElapsedSeconds();
    if (metrics_ != nullptr) {
      metrics_->RecordSeconds("stage.links", result.stats.link_seconds);
      metrics_->AddCounter("graph.points", graph_.size());
      metrics_->AddCounter("graph.edges", graph_.NumEdges());
      metrics_->AddCounter("graph.max_degree", graph_.MaxDegree());
      metrics_->SetGauge("graph.average_degree", graph_.AverageDegree());
      metrics_->AddCounter("prune.isolated_points", pruned_.size());
      metrics_->AddCounter("links.nonzero_pairs", links.NumNonZeroPairs());
      metrics_->AddCounter("links.total", links.TotalLinks());
    }
    if (check_every_ > 0) {
      diag::CheckNeighborGraph(graph_, &invariant_report_);
      diag::CheckLinkMatrixSymmetry(links, &invariant_report_);
    }

    Timer merge_timer;
    // Every goodness argument is a cluster size (or a sum of two), all
    // bounded by n — fill the memo once so shard workers only ever read.
    goodness_.Reserve(graph_.size());
    if (threads_ > 1) {
      pool_ = std::make_unique<ShardPool>(threads_);
      scratch_.resize(threads_);
    } else {
      scratch_.resize(1);
    }
    InitializeClusters(links);
    if (metrics_ != nullptr) {
      size_t local_entries = 0;
      for (ClusterId c = 0; c < next_id_; ++c) {
        if (alive_[c]) local_entries += arena_[c].live_links;
      }
      metrics_->MaxCounter("heap.global_peak", global_.size());
      metrics_->MaxCounter("heap.local_entries_peak", local_entries);
    }
    if (check_every_ > 0) VerifyBookkeeping(links);
    MergeLoop(&result, links);
    if (check_every_ > 0) VerifyBookkeeping(links);
    result.stats.merge_seconds = merge_timer.ElapsedSeconds();

    BuildClustering(&result);
    result.stats.total_seconds = total_timer.ElapsedSeconds();
    result.stats.criterion_value =
        CriterionFunction(result.clustering, links, goodness_);
    if (metrics_ != nullptr) {
      metrics_->RecordSeconds("stage.merge", result.stats.merge_seconds);
      metrics_->RecordSeconds("stage.merge.relink", relink_seconds_);
      metrics_->RecordSeconds("stage.merge.relink.parallel",
                              parallel_relink_seconds_);
      metrics_->RecordSeconds("stage.merge.heap", heap_seconds_);
      metrics_->RecordSeconds("stage.total", result.stats.total_seconds);
      metrics_->AddCounter("merge.merges", result.stats.num_merges);
      metrics_->AddCounter("merge.goodness_updates", goodness_updates_);
      metrics_->AddCounter("merge.relink_partners", relink_partners_);
      metrics_->AddCounter("merge.relink_dead_skipped", relink_dead_skipped_);
      metrics_->AddCounter("merge.relink_compactions", relink_compactions_);
      metrics_->AddCounter("merge.relink_best_rescans", best_rescans_);
      metrics_->AddCounter("merge.shards", shards_run_);
      metrics_->AddCounter("merge.parallel_relinks", parallel_relinks_);
      metrics_->AddCounter("merge.compact_sweeps", compact_sweeps_);
      metrics_->SetGauge("merge.threads", static_cast<double>(threads_));
      metrics_->AddCounter("heap.ops", heap_ops_);
      metrics_->AddCounter("weed.clusters", result.stats.num_weeded_clusters);
      metrics_->AddCounter("weed.points", result.stats.num_weeded_points);
      metrics_->AddCounter("diag.invariant_checks",
                           invariant_report_.checks_run());
      metrics_->AddCounter("diag.invariant_violations",
                           invariant_report_.violations().size());
      metrics_->SetGauge("criterion.value", result.stats.criterion_value);
      result.metrics = registry.Snapshot();
    }
    metrics_ = nullptr;
    return result;
  }

 private:
  /// Per-shard relink scratch: the shard's slice of the merged row, the
  /// partners whose best priority changed (heap fixups, applied serially
  /// later), the shard's best candidate for the merged cluster, and local
  /// counters. Persistent across merges so capacity is paid once.
  struct ShardScratch {
    std::vector<RowEntry> out;
    std::vector<ClusterId> changed;
    ClusterId best_key = 0;
    double best_priority = kNoCandidate;
    uint64_t partners = 0;
    uint64_t dead_skipped = 0;
    uint64_t compactions = 0;
    uint64_t rescans = 0;

    void Reset() {
      out.clear();
      changed.clear();
      best_key = 0;
      best_priority = kNoCandidate;
      partners = 0;
      dead_skipped = 0;
      compactions = 0;
      rescans = 0;
    }
  };

  void PruneIsolatedPoints() {
    for (size_t p = 0; p < graph_.size(); ++p) {
      if (graph_.Degree(p) < options_.min_neighbors) {
        pruned_.push_back(static_cast<PointIndex>(p));
      }
    }
  }

  bool IsPruned(PointIndex p) const {
    return std::binary_search(pruned_.begin(), pruned_.end(), p);
  }

  void InitializeClusters(const LinkMatrix& links) {
    const size_t n = graph_.size();
    arena_.resize(2 * n);  // ids 0 … 2n−1 suffice for n−1 merges
    alive_.assign(2 * n, 0);
    for (PointIndex p = 0; p < n; ++p) {
      if (IsPruned(p)) continue;
      arena_[p].members.push_back(p);
      alive_[p] = 1;
      ++num_live_;
    }
    next_id_ = static_cast<ClusterId>(n);

    // Seed cross-links from the frozen CSR rows: partners arrive already
    // sorted, so each row fills in one pass and the best entry falls out
    // of the scan (ascending ids ⇒ ties keep the smaller key, matching
    // the heaps' order). Links to pruned points are dropped: pruned
    // outliers never participate.
    for (PointIndex p = 0; p < n; ++p) {
      if (!alive_[p]) continue;
      const LinkRowSpan row = links.FlatRow(p);
      ParClusterState& s = arena_[p];
      s.row.reserve(row.size);
      for (size_t i = 0; i < row.size; ++i) {
        const PointIndex q = row.partners[i];
        if (!alive_[q]) continue;
        const double g = goodness_.Goodness(row.counts[i], 1, 1);
        s.row.push_back(RowEntry{q, row.counts[i], g});
        if (g > s.best_priority) {
          s.best_priority = g;
          s.best_key = q;
        }
      }
      s.live_links = s.row.size();
    }

    // One O(n) heapify instead of n sifted inserts; keys are unique and the
    // resulting heap content is identical.
    std::vector<HeapEntry> entries;
    entries.reserve(num_live_);
    for (PointIndex p = 0; p < n; ++p) {
      if (alive_[p]) entries.push_back(HeapEntry{p, LocalBest(p)});
    }
    global_.Assign(std::move(entries));
    heap_ops_ += global_.size();
  }

  double LocalBest(ClusterId c) const { return arena_[c].best_priority; }

  /// Recomputes a cluster's best live entry by scanning its row, clearing
  /// its dirty mark. Ascending partner order makes ties resolve toward the
  /// smaller id, matching UpdatableHeap's (priority desc, key asc) order.
  void RecomputeBest(ParClusterState& s, uint64_t* rescans) const {
    ++*rescans;
    s.best_priority = kNoCandidate;
    s.best_key = 0;
    s.dirty = false;
    for (const RowEntry& e : s.row) {
      if (!alive_[e.partner]) continue;
      if (e.goodness > s.best_priority) {
        s.best_priority = e.goodness;
        s.best_key = e.partner;
      }
    }
  }

  /// link[u, v] from u's row. The row stays sorted even with stale entries
  /// (ids are minted monotonically), so this is a binary search.
  uint64_t CountOf(const ParClusterState& s, ClusterId partner) const {
    auto it = std::lower_bound(
        s.row.begin(), s.row.end(), partner,
        [](const RowEntry& e, ClusterId p) { return e.partner < p; });
    assert(it != s.row.end() && it->partner == partner);
    return it->count;
  }

  void MergeLoop(RockResult* result, const LinkMatrix& links) {
    const size_t k = options_.num_clusters;
    const size_t weed_at = WeedThreshold();
    bool weeded = (weed_at == 0);

    while (num_live_ > k) {
      if (!weeded && num_live_ <= weed_at) {
        WeedSmallClusters(result);
        weeded = true;
        continue;
      }
      if (global_.empty()) break;
      const auto top = global_.Top();
      if (top.priority == kNoCandidate) break;  // all cross-links are zero
      const ClusterId u = top.key;
      if (arena_[u].dirty) {
        // Lazy cleaning: settle the top's true best and re-evaluate. The
        // stored value was an upper bound, so no cluster whose true best
        // exceeds this one can be hiding below it.
        RecomputeBest(arena_[u], &best_rescans_);
        global_.InsertOrUpdate(u, arena_[u].best_priority);
        heap_ops_ += 1;
        continue;
      }
      const ClusterId v = arena_[u].best_key;
      Merge(u, v, result);
      if (result->stats.num_merges % kSweepInterval == 0) {
        SweepCompact();
      }
      if (check_every_ > 0 &&
          result->stats.num_merges % check_every_ == 0) {
        VerifyBookkeeping(links);
      }
    }
    // A weeding pause configured below k (or exactly at k) still applies
    // when the loop exits normally.
    if (!weeded && num_live_ <= weed_at) {
      WeedSmallClusters(result);
    }
  }

  size_t WeedThreshold() const {
    if (options_.outlier_stop_multiple <= 0.0) return 0;
    const double raw = options_.outlier_stop_multiple *
                       static_cast<double>(options_.num_clusters);
    return static_cast<size_t>(std::ceil(raw));
  }

  /// Frees a dead cluster's slab. The arena slot itself stays (stable
  /// references), only the heap-allocated vectors are returned.
  static void ReleaseState(ParClusterState& s) { s = ParClusterState{}; }

  /// Drops stale (dead-partner) entries once they dominate the row. The
  /// 2× threshold amortizes to O(1) per append; tiny rows are left alone.
  /// Compaction changes neither the live entries nor their order, so it is
  /// invisible to results — safe inside a shard (the row belongs to the
  /// shard) and inside the periodic sweep (between merges).
  void MaybeCompact(ParClusterState& s, uint64_t* compactions) const {
    if (s.row.size() < 8 || s.row.size() < 2 * s.live_links) {
      return;
    }
    size_t out = 0;
    for (size_t i = 0; i < s.row.size(); ++i) {
      if (!alive_[s.row[i].partner]) continue;
      s.row[out] = s.row[i];
      ++out;
    }
    assert(out == s.live_links);
    s.row.resize(out);
    ++*compactions;
  }

  /// The relink kernel: three-way sorted merge of su.row[iu, eu) and
  /// sv.row[iv, ev) — index ranges covering one partner-id shard (or, for
  /// the serial path, the whole rows). Appends the merged entries to `out`
  /// in ascending partner order, applies the partner-side updates (append,
  /// live_links, best, compaction), and records partners whose best
  /// priority changed into scratch.changed. Only clusters whose id falls
  /// in this shard's range are touched, so concurrent shards never share
  /// a row.
  void RelinkRange(const ParClusterState& su, const ParClusterState& sv,
                   size_t iu, size_t eu, size_t iv, size_t ev, ClusterId w,
                   size_t nw, double t_nw, std::vector<RowEntry>& out,
                   ShardScratch& scratch) {
    const ClusterId u_id = relink_u_;
    const ClusterId v_id = relink_v_;
    const RowEntry* ru = su.row.data();
    const RowEntry* rv = sv.row.data();

    // One partner consumed: goodness in the exact operation order of
    // GoodnessMeasure::Goodness — (T[nx+nw] − T[nx]) − T[nw], then the
    // divide — with T[nw] hoisted (same value, same order).
    const auto emit = [&](ClusterId x, uint64_t count, bool from_both) {
      ParClusterState& sx = arena_[x];
      ++scratch.partners;
      const size_t nx = sx.members.size();
      const double expected =
          (goodness_.ExpectedIntraLinks(nx + nw) -
           goodness_.ExpectedIntraLinks(nx)) -
          t_nw;
      const double g =
          expected <= 0.0 ? 0.0 : static_cast<double>(count) / expected;
      const double old_best = sx.best_priority;
      // x's entries for u/v just died and (w, g) replaces them. The argmax
      // updates in O(1); a dying best marks x dirty (lazy cleaning) with
      // max(old best, g) kept as the upper bound instead of rescanning.
      sx.row.push_back(RowEntry{w, count, g});  // w > every id: stays sorted
      if (from_both) {
        sx.live_links -= 1;  // entries for u and v die, one for w is born
      }
      if (sx.dirty) {
        if (g > sx.best_priority) sx.best_priority = g;  // raise the bound
      } else if (sx.best_key == u_id || sx.best_key == v_id) {
        sx.dirty = true;  // old best ≥ every live entry: still a bound
        if (g > sx.best_priority) sx.best_priority = g;
      } else if (g > sx.best_priority) {
        sx.best_priority = g;
        sx.best_key = w;
      }
      MaybeCompact(sx, &scratch.compactions);
      // The global heap stores (x → stored priority); an unchanged value
      // makes InsertOrUpdate a content no-op, so only real changes queue a
      // fixup. Bitwise compare: goodness values are never NaN.
      if (sx.best_priority != old_best) scratch.changed.push_back(x);

      out.push_back(RowEntry{x, count, g});  // x ascends across iterations
      if (g > scratch.best_priority) {  // ties keep the smaller id
        scratch.best_priority = g;
        scratch.best_key = x;
      }
    };

    while (iu < eu && iv < ev) {
      const ClusterId pu = ru[iu].partner;
      if (!alive_[pu]) {
        ++iu;
        ++scratch.dead_skipped;
        continue;
      }
      const ClusterId pv = rv[iv].partner;
      if (!alive_[pv]) {
        ++iv;
        ++scratch.dead_skipped;
        continue;
      }
      if (pu < pv) {
        emit(pu, ru[iu].count, false);
        ++iu;
      } else if (pv < pu) {
        emit(pv, rv[iv].count, false);
        ++iv;
      } else {
        emit(pu, ru[iu].count + rv[iv].count, true);
        ++iu;
        ++iv;
      }
    }
    for (; iu < eu; ++iu) {
      if (!alive_[ru[iu].partner]) {
        ++scratch.dead_skipped;
        continue;
      }
      emit(ru[iu].partner, ru[iu].count, false);
    }
    for (; iv < ev; ++iv) {
      if (!alive_[rv[iv].partner]) {
        ++scratch.dead_skipped;
        continue;
      }
      emit(rv[iv].partner, rv[iv].count, false);
    }
  }

  /// First row index with partner id >= bound.
  static size_t LowerBound(const std::vector<RowEntry>& row, ClusterId bound) {
    auto it = std::lower_bound(
        row.begin(), row.end(), bound,
        [](const RowEntry& e, ClusterId p) { return e.partner < p; });
    return static_cast<size_t>(it - row.begin());
  }

  void Merge(ClusterId u, ClusterId v, RockResult* result) {
    ParClusterState& su = arena_[u];
    ParClusterState& sv = arena_[v];
    const ClusterId w = next_id_++;
    ParClusterState& sw = arena_[w];  // arena is pre-sized: no reallocation

    sw.members.resize(su.members.size() + sv.members.size());
    std::merge(su.members.begin(), su.members.end(), sv.members.begin(),
               sv.members.end(), sw.members.begin());
    const size_t nw = sw.members.size();

    result->merges.push_back(MergeRecord{
        u, v, w,
        goodness_.Goodness(CountOf(su, v), su.members.size(),
                           sv.members.size()),
        nw});
    ++result->stats.num_merges;

    global_.Erase(v);  // u's entry is renamed to w at the end of the merge
    heap_ops_ += 1;
    // Kill u and v up front: the lazy skip then drops their entries from
    // every partner row (including each other's), and a compaction that
    // fires mid-relink must not keep them. w is born alive for the same
    // reason — its freshly appended entries must survive compaction.
    alive_[u] = 0;
    alive_[v] = 0;
    alive_[w] = 1;
    relink_u_ = u;
    relink_v_ = v;

    Timer relink_timer;
    const size_t live_total = su.live_links + sv.live_links;
    const double t_nw = goodness_.ExpectedIntraLinks(nw);
    sw.row.reserve(live_total);
    scratch_[0].Reset();

    // Shard only when the pool exists and the relink is big enough to
    // amortize waking it; cap the shard count so every shard owns at least
    // one split index of the longer row.
    size_t num_shards = 1;
    if (pool_ != nullptr && live_total >= options_.merge_shard_min) {
      const size_t longest = std::max(su.row.size(), sv.row.size());
      num_shards = std::min(
          threads_, std::max<size_t>(
                        1, live_total / options_.merge_shard_min + 1));
      num_shards = std::min(num_shards, std::max<size_t>(1, longest));
    }

    if (num_shards <= 1) {
      RelinkRange(su, sv, 0, su.row.size(), 0, sv.row.size(), w, nw, t_nw,
                  sw.row, scratch_[0]);
      FoldScratch(sw, scratch_[0]);
    } else {
      // Partner-id boundaries from evenly spaced indices of the longer
      // row; the ranges partition the id space, so every entry of both
      // rows lands in exactly one shard and shard outputs concatenate in
      // ascending order.
      const std::vector<RowEntry>& longer =
          su.row.size() >= sv.row.size() ? su.row : sv.row;
      shard_bounds_.assign(num_shards + 1, 0);
      shard_bounds_[num_shards] = std::numeric_limits<ClusterId>::max();
      for (size_t s = 1; s < num_shards; ++s) {
        shard_bounds_[s] = longer[(s * longer.size()) / num_shards].partner;
      }
      for (size_t s = 0; s < num_shards; ++s) scratch_[s].Reset();
      pool_->Run(num_shards, [&](size_t s) {
        const ClusterId lo = shard_bounds_[s];
        const ClusterId hi = shard_bounds_[s + 1];
        const size_t bu = s == 0 ? 0 : LowerBound(su.row, lo);
        const size_t eu =
            s + 1 == num_shards ? su.row.size() : LowerBound(su.row, hi);
        const size_t bv = s == 0 ? 0 : LowerBound(sv.row, lo);
        const size_t ev =
            s + 1 == num_shards ? sv.row.size() : LowerBound(sv.row, hi);
        RelinkRange(su, sv, bu, eu, bv, ev, w, nw, t_nw, scratch_[s].out,
                    scratch_[s]);
      });
      // Stitch in shard order: outputs cover ascending disjoint id
      // ranges, and folding bests left-to-right with strict > reproduces
      // the serial ascending scan's tie-breaks exactly.
      for (size_t s = 0; s < num_shards; ++s) {
        sw.row.insert(sw.row.end(), scratch_[s].out.begin(),
                      scratch_[s].out.end());
        FoldScratch(sw, scratch_[s]);
      }
      shards_run_ += num_shards;
      ++parallel_relinks_;
      parallel_relink_seconds_ += relink_timer.ElapsedSeconds();
    }
    sw.live_links = sw.row.size();
    ReleaseState(su);
    ReleaseState(sv);
    --num_live_;  // two die, one is born
    relink_seconds_ += relink_timer.ElapsedSeconds();

    // Deferred global-heap fixups, in ascending partner order (shard
    // concatenation preserves it): only partners whose best actually
    // changed, plus w taking over u's still-present entry in one sift.
    Timer heap_timer;
    size_t fixups = 0;
    for (size_t s = 0; s < (num_shards <= 1 ? size_t{1} : num_shards);
         ++s) {
      for (ClusterId x : scratch_[s].changed) {
        global_.InsertOrUpdate(x, LocalBest(x));
      }
      fixups += scratch_[s].changed.size();
    }
    global_.ReplaceKey(u, w, LocalBest(w));
    heap_ops_ += fixups + 1;
    heap_seconds_ += heap_timer.ElapsedSeconds();
  }

  /// Accumulates one shard's counters and best candidate into the engine
  /// totals and the merged cluster. Called in shard order; strict >
  /// matches the ascending serial scan's tie-breaking.
  void FoldScratch(ParClusterState& sw, const ShardScratch& s) {
    if (s.best_priority > sw.best_priority) {
      sw.best_priority = s.best_priority;
      sw.best_key = s.best_key;
    }
    goodness_updates_ += s.partners;
    relink_partners_ += s.partners;
    relink_dead_skipped_ += s.dead_skipped;
    relink_compactions_ += s.compactions;
    best_rescans_ += s.rescans;
  }

  /// Periodic dead-entry sweep: walks the arena in contiguous chunks (in
  /// parallel when the pool exists — chunk ownership is disjoint) and
  /// compacts rows now dominated by stale entries. Catches rows staled by
  /// weeding, which no relink ever touches again.
  void SweepCompact() {
    ++compact_sweeps_;
    const size_t limit = next_id_;
    const size_t chunks = pool_ == nullptr ? 1 : threads_;
    std::vector<uint64_t> compactions(chunks, 0);
    const auto sweep_chunk = [&](size_t c) {
      const size_t begin = (limit * c) / chunks;
      const size_t end = (limit * (c + 1)) / chunks;
      for (size_t id = begin; id < end; ++id) {
        if (!alive_[id]) continue;
        MaybeCompact(arena_[id], &compactions[c]);
      }
    };
    if (pool_ == nullptr) {
      sweep_chunk(0);
    } else {
      pool_->Run(chunks, sweep_chunk);
    }
    for (uint64_t c : compactions) relink_compactions_ += c;
  }

  void WeedSmallClusters(RockResult* result) {
    std::vector<ClusterId> victims;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (alive_[c] &&
          arena_[c].members.size() < options_.min_cluster_support) {
        victims.push_back(c);
      }
    }
    for (ClusterId c : victims) {
      ParClusterState& sc = arena_[c];
      result->stats.num_weeded_points += sc.members.size();
      for (PointIndex p : sc.members) weeded_points_.push_back(p);
      alive_[c] = 0;  // partners now skip c's stale entries lazily
      for (const RowEntry& e : sc.row) {
        const ClusterId x = e.partner;
        if (!alive_[x]) continue;
        ParClusterState& sx = arena_[x];
        --sx.live_links;
        // Lazy cleaning: losing c only removes candidates, so the stored
        // priority stays a valid upper bound and the heap needs no fixup
        // at all — x is cleaned if and when it surfaces at the top.
        if (!sx.dirty && sx.best_key == c) sx.dirty = true;
      }
      global_.Erase(c);
      heap_ops_ += 1;
      ReleaseState(sc);
      --num_live_;
      ++result->stats.num_weeded_clusters;
    }
  }

  /// Re-derives the merge loop's redundant state from first principles and
  /// reports every disagreement — the same checks (a)–(f) as the flat
  /// engine (membership partition, cross-links, goodness, heaps) over the
  /// interleaved row layout. Debug cadence only, never on by default.
  void VerifyBookkeeping(const LinkMatrix& links) {
    invariant_report_.NoteCheck();
    constexpr ClusterId kNoCluster = std::numeric_limits<ClusterId>::max();

    // (a) Live-cluster census and the monotone merge identity.
    size_t live = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (alive_[c]) ++live;
    }
    if (live != num_live_) {
      invariant_report_.Report(
          "merge.live_count", "num_live_ = " + std::to_string(num_live_) +
                                  " but census found " +
                                  std::to_string(live));
    }

    // (b) Membership partition: each unpruned, unweeded point sits in
    // exactly one live cluster.
    std::vector<PointIndex> weeded_sorted = weeded_points_;
    std::sort(weeded_sorted.begin(), weeded_sorted.end());
    std::vector<ClusterId> cluster_of(graph_.size(), kNoCluster);
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (!alive_[c]) continue;
      for (PointIndex p : arena_[c].members) {
        if (cluster_of[p] != kNoCluster) {
          invariant_report_.Report(
              "merge.partition", "point " + std::to_string(p) +
                                     " is in clusters " +
                                     std::to_string(cluster_of[p]) + " and " +
                                     std::to_string(c));
        }
        cluster_of[p] = c;
      }
    }
    for (size_t p = 0; p < graph_.size(); ++p) {
      const bool excluded =
          IsPruned(static_cast<PointIndex>(p)) ||
          std::binary_search(weeded_sorted.begin(), weeded_sorted.end(),
                             static_cast<PointIndex>(p));
      if (excluded == (cluster_of[p] != kNoCluster)) {
        invariant_report_.Report(
            "merge.partition",
            "point " + std::to_string(p) +
                (excluded ? " is pruned/weeded but still clustered"
                          : " is unassigned but not pruned/weeded"));
      }
    }

    for (ClusterId c = 0; c < next_id_; ++c) {
      if (!alive_[c]) continue;
      const ParClusterState& sc = arena_[c];

      // (c) Row shape: partner ids strictly ascending and live_links equal
      // to the live-entry census.
      size_t live_entries = 0;
      for (size_t i = 0; i < sc.row.size(); ++i) {
        if (i > 0 && sc.row[i].partner <= sc.row[i - 1].partner) {
          invariant_report_.Report(
              "merge.flat_row",
              "cluster " + std::to_string(c) + " partner row not strictly " +
                  "ascending at index " + std::to_string(i));
        }
        if (alive_[sc.row[i].partner]) ++live_entries;
      }
      if (live_entries != sc.live_links) {
        invariant_report_.Report(
            "merge.flat_row",
            "cluster " + std::to_string(c) + " live_links = " +
                std::to_string(sc.live_links) + " but census found " +
                std::to_string(live_entries));
      }

      // (d) Cross-links against a fresh recount from the point links.
      std::unordered_map<ClusterId, uint64_t> expect;
      for (PointIndex p : sc.members) {
        for (const auto& [q, count] : links.Row(p)) {
          const ClusterId other = cluster_of[q];
          if (other != kNoCluster && other != c) expect[other] += count;
        }
      }
      if (expect.size() != live_entries) {
        invariant_report_.Report(
            "merge.cross_links",
            "cluster " + std::to_string(c) + " tracks " +
                std::to_string(live_entries) + " partners but recount has " +
                std::to_string(expect.size()));
      }
      for (const RowEntry& e : sc.row) {
        if (!alive_[e.partner]) continue;
        auto it = expect.find(e.partner);
        if (it == expect.end() || it->second != e.count) {
          invariant_report_.Report(
              "merge.cross_links",
              "link[" + std::to_string(c) + ", " + std::to_string(e.partner) +
                  "] = " + std::to_string(e.count) + " but recount = " +
                  (it == expect.end() ? std::string("missing")
                                      : std::to_string(it->second)));
        }
      }

      // (e) Stored goodness values and the tracked argmax.
      ClusterId expect_best_key = 0;
      double expect_best_priority = kNoCandidate;
      for (const RowEntry& e : sc.row) {
        if (!alive_[e.partner]) continue;
        const double expected_g = goodness_.Goodness(
            e.count, sc.members.size(), arena_[e.partner].members.size());
        if (std::abs(e.goodness - expected_g) >
            1e-9 * (1.0 + std::abs(expected_g))) {
          invariant_report_.Report(
              "merge.goodness",
              "g(" + std::to_string(c) + ", " + std::to_string(e.partner) +
                  ") = " + std::to_string(e.goodness) +
                  " but recompute = " + std::to_string(expected_g));
        }
        if (e.goodness > expect_best_priority) {
          expect_best_priority = e.goodness;
          expect_best_key = e.partner;
        }
      }
      if (sc.dirty) {
        // A dirty cluster promises only an upper bound (lazy cleaning).
        if (sc.best_priority < expect_best_priority) {
          invariant_report_.Report(
              "merge.local_best",
              "dirty cluster " + std::to_string(c) + " stores bound " +
                  std::to_string(sc.best_priority) +
                  " below its true best " +
                  std::to_string(expect_best_priority));
        }
      } else if (sc.best_priority != expect_best_priority ||
                 (live_entries > 0 && sc.best_key != expect_best_key)) {
        invariant_report_.Report(
            "merge.local_best",
            "cluster " + std::to_string(c) + " tracks best (" +
                std::to_string(sc.best_key) + ", " +
                std::to_string(sc.best_priority) + ") but scan found (" +
                std::to_string(expect_best_key) + ", " +
                std::to_string(expect_best_priority) + ")");
      }

      // (f) Global heap: every live cluster present, keyed by its local
      // best.
      if (!global_.Contains(c)) {
        invariant_report_.Report(
            "merge.global_heap",
            "cluster " + std::to_string(c) + " missing from global heap");
        continue;
      }
      const double expected_best = LocalBest(c);
      const double actual_best = global_.PriorityOf(c);
      if (!(actual_best == expected_best) &&
          std::abs(actual_best - expected_best) >
              1e-9 * (1.0 + std::abs(expected_best))) {
        invariant_report_.Report(
            "merge.global_heap",
            "global priority of " + std::to_string(c) + " = " +
                std::to_string(actual_best) + " but local best = " +
                std::to_string(expected_best));
      }
    }
    if (global_.size() != num_live_) {
      invariant_report_.Report(
          "merge.global_heap",
          "global heap has " + std::to_string(global_.size()) +
              " entries for " + std::to_string(num_live_) +
              " live clusters");
    }
  }

  void BuildClustering(RockResult* result) {
    std::vector<ClusterIndex> assignment(graph_.size(), kUnassigned);
    ClusterIndex next = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (!alive_[c]) continue;
      for (PointIndex p : arena_[c].members) {
        assignment[p] = next;
      }
      ++next;
    }
    result->clustering = Clustering::FromAssignment(std::move(assignment));
    result->clustering.SortBySizeDescending();
  }

  const RockOptions& options_;
  GoodnessMeasure goodness_;
  const NeighborGraph& graph_;
  const size_t threads_;

  /// Per-run arena: slab per possible cluster id, allocated once. Slots of
  /// dead clusters are released (vectors freed) but never reused.
  std::vector<ParClusterState> arena_;
  std::vector<uint8_t> alive_;             // parallel to arena_
  UpdatableHeap<ClusterId, double> global_;
  std::vector<PointIndex> pruned_;         // sorted by construction
  std::vector<PointIndex> weeded_points_;
  std::unique_ptr<ShardPool> pool_;        // null when threads_ == 1
  std::vector<ShardScratch> scratch_;      // one per shard slot
  std::vector<ClusterId> shard_bounds_;    // scratch, reused across merges
  ClusterId relink_u_ = 0;                 // the pair being merged, for
  ClusterId relink_v_ = 0;                 // best-invalidation checks
  size_t num_live_ = 0;
  ClusterId next_id_ = 0;

  diag::MetricsRegistry* metrics_ = nullptr;  // null → metrics disabled
  diag::InvariantReport invariant_report_;
  size_t check_every_ = 0;  // 0 → invariant checks disabled
  uint64_t goodness_updates_ = 0;
  uint64_t relink_partners_ = 0;
  uint64_t relink_dead_skipped_ = 0;
  uint64_t relink_compactions_ = 0;
  uint64_t best_rescans_ = 0;
  uint64_t heap_ops_ = 0;
  uint64_t shards_run_ = 0;
  uint64_t parallel_relinks_ = 0;
  uint64_t compact_sweeps_ = 0;
  double relink_seconds_ = 0.0;
  double parallel_relink_seconds_ = 0.0;
  double heap_seconds_ = 0.0;
};

}  // namespace

RockResult RunParallelMergeEngine(const NeighborGraph& graph,
                                  const RockOptions& options) {
  ParallelMergeEngine engine(graph, options);
  return engine.Run();
}

}  // namespace rock::internal
