#include "core/pipeline.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "core/sampling.h"
#include "diag/metrics.h"

namespace rock {

Result<PipelineResult> RunRockPipeline(const std::string& store_path,
                                       const PipelineOptions& options) {
  ROCK_RETURN_IF_ERROR(options.rock.Validate());
  if (options.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be > 0");
  }

  PipelineResult out;

  // Pass 1: streaming reservoir sample of the store.
  Timer sample_timer;
  Rng rng(options.seed);
  auto reader = TransactionStoreReader::Open(store_path);
  ROCK_RETURN_IF_ERROR(reader.status());
  if (reader->count() < options.sample_size) {
    return Status::InvalidArgument("store has fewer rows than sample_size");
  }
  ReservoirSampler<Transaction> sampler(options.sample_size, &rng);
  while (reader->Next()) sampler.Offer(reader->transaction());
  ROCK_RETURN_IF_ERROR(reader->status());

  // Keep sample rows in store order so results are stable and reportable.
  std::vector<size_t> order(sampler.sample().size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sampler.sample_indices()[a] < sampler.sample_indices()[b];
  });
  TransactionDataset sample;
  out.sample_rows.reserve(order.size());
  for (size_t idx : order) {
    sample.AddTransaction(sampler.sample()[idx]);
    out.sample_rows.push_back(sampler.sample_indices()[idx]);
  }
  out.sample_seconds = sample_timer.ElapsedSeconds();

  // Cluster the sample.
  Timer cluster_timer;
  TransactionJaccard sim(sample);
  RockClusterer clusterer(options.rock);
  auto rock_result = clusterer.Cluster(sim);
  ROCK_RETURN_IF_ERROR(rock_result.status());
  out.sample_result = std::move(*rock_result);
  out.cluster_seconds = cluster_timer.ElapsedSeconds();

  // Pass 2: stream the store through the labeler, sharded over
  // options.rock.label_threads workers.
  Timer label_timer;
  auto labeler =
      TransactionLabeler::Build(sample, out.sample_result.clustering,
                                options.rock, options.labeling);
  ROCK_RETURN_IF_ERROR(labeler.status());
  diag::MetricsRegistry registry;
  const bool collect = options.rock.diag.collect_metrics;
  LabelStoreOptions label_options;
  label_options.num_threads = options.rock.label_threads;
  label_options.metrics = collect ? &registry : nullptr;
  auto labeling = LabelStore(store_path, *labeler, label_options);
  ROCK_RETURN_IF_ERROR(labeling.status());
  out.labeling = std::move(*labeling);
  out.label_seconds = label_timer.ElapsedSeconds();

  if (collect) {
    registry.RecordSeconds("stage.sample", out.sample_seconds);
    registry.RecordSeconds("stage.label", out.label_seconds);
    registry.AddCounter("sample.rows", out.sample_rows.size());
    registry.AddCounter("label.rows", out.labeling.assignments.size());
    registry.AddCounter("label.outliers", out.labeling.num_outliers);
    out.metrics = registry.Snapshot();
    out.metrics.Merge(out.sample_result.metrics);
  }
  return out;
}

}  // namespace rock
