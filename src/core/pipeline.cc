#include "core/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include <cerrno>

#include "common/timer.h"
#include "core/checkpoint.h"
#include "core/sampling.h"
#include "diag/metrics.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rock {

namespace {

/// The identity the checkpoint of this run must carry (core/checkpoint.h).
CheckpointFingerprint MakeFingerprint(uint64_t store_count,
                                      uint64_t effective_sample,
                                      const PipelineOptions& options) {
  CheckpointFingerprint fp;
  fp.store_count = store_count;
  fp.theta = options.rock.theta;
  fp.num_clusters = options.rock.num_clusters;
  fp.min_neighbors = options.rock.min_neighbors;
  fp.outlier_stop_multiple = options.rock.outlier_stop_multiple;
  fp.min_cluster_support = options.rock.min_cluster_support;
  fp.sample_size = effective_sample;
  fp.sample_seed = options.seed;
  fp.labeling_fraction = options.labeling.fraction;
  fp.min_labeling_points = options.labeling.min_labeling_points;
  fp.labeling_seed = options.labeling.seed;
  return fp;
}

/// Store row count, retried — the open consults the "store.open" site.
/// It clamps the sample and keys the checkpoint/model fingerprint.
Result<uint64_t> CountStoreRows(const std::string& store_path,
                                const RetryPolicy& retry,
                                RetrySleeper sleeper,
                                RetryStats* retry_stats) {
  uint64_t store_count = 0;
  ROCK_RETURN_IF_ERROR(RetryTransient(
      retry,
      [&]() -> Status {
        auto reader = TransactionStoreReader::Open(store_path);
        ROCK_RETURN_IF_ERROR(reader.status());
        store_count = reader->count();
        return Status::OK();
      },
      retry_stats, sleeper));
  return store_count;
}

/// The sample phase shared by RunRockPipeline and BuildModel: one streaming
/// reservoir pass followed by clustering the sample. Both halves must draw
/// and cluster through this exact code path — a served model diverging by
/// even one RNG call would break the serve ≡ pipeline bit-identity the
/// differential tests enforce.
struct SampledClustering {
  TransactionDataset sample;          ///< picked transactions as a dataset
  std::vector<Transaction> picked;    ///< the same transactions, store order
  std::vector<uint64_t> rows;         ///< store row of each picked tx
  RockResult rock;                    ///< clustering of the sample
  double sample_seconds = 0.0;
  double cluster_seconds = 0.0;
};

Result<SampledClustering> SampleAndCluster(const std::string& store_path,
                                           const PipelineOptions& options,
                                           uint64_t effective_sample,
                                           RetryStats* retry_stats) {
  SampledClustering out;
  // Pass 1: streaming reservoir sample of the store. Retried as a unit —
  // the RNG and reservoir reset every attempt, so a retry after a
  // transient mid-stream error draws exactly the sample an undisturbed
  // pass would.
  Timer sample_timer;
  ROCK_RETURN_IF_ERROR(RetryTransient(
      options.retry,
      [&]() -> Status {
        out.picked.clear();
        out.rows.clear();
        Rng rng(options.seed);
        auto reader = TransactionStoreReader::Open(store_path);
        ROCK_RETURN_IF_ERROR(reader.status());
        ReservoirSampler<Transaction> sampler(
            static_cast<size_t>(effective_sample), &rng);
        while (reader->Next()) sampler.Offer(reader->transaction());
        ROCK_RETURN_IF_ERROR(reader->status());
        // Keep sample rows in store order so results are stable and
        // reportable.
        std::vector<size_t> order(sampler.sample().size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return sampler.sample_indices()[a] < sampler.sample_indices()[b];
        });
        out.picked.reserve(order.size());
        out.rows.reserve(order.size());
        for (size_t idx : order) {
          out.picked.push_back(sampler.sample()[idx]);
          out.rows.push_back(sampler.sample_indices()[idx]);
        }
        return Status::OK();
      },
      retry_stats, options.retry_sleeper));
  for (const Transaction& tx : out.picked) out.sample.AddTransaction(tx);
  out.sample_seconds = sample_timer.ElapsedSeconds();

  // Cluster the sample.
  Timer cluster_timer;
  TransactionJaccard sim(out.sample);
  RockClusterer clusterer(options.rock);
  auto rock_result = clusterer.Cluster(sim);
  ROCK_RETURN_IF_ERROR(rock_result.status());
  out.rock = std::move(*rock_result);
  out.cluster_seconds = cluster_timer.ElapsedSeconds();
  return out;
}

}  // namespace

Result<PipelineResult> RunRockPipeline(const std::string& store_path,
                                       const PipelineOptions& options) {
  ROCK_RETURN_IF_ERROR(options.rock.Validate());
  if (options.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be > 0");
  }
  if (!options.rock.failpoints.empty()) {
    ROCK_RETURN_IF_ERROR(fail::Configure(options.rock.failpoints));
  }
  if (options.resume && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "resume requires a checkpoint_path to resume from");
  }

  diag::MetricsRegistry registry;
  const bool collect = options.rock.diag.collect_metrics;
  diag::MetricsRegistry* m = collect ? &registry : nullptr;
  const bool checkpointing = !options.checkpoint_path.empty();

  PipelineResult out;
  RetryStats retry_stats;  // sampling + checkpoint I/O (labeling has its own)

  Result<uint64_t> count_or = CountStoreRows(
      store_path, options.retry, options.retry_sleeper, &retry_stats);
  if (!count_or.ok()) return count_or.status();
  const uint64_t store_count = *count_or;
  if (store_count == 0) {
    return Status::InvalidArgument(
        "cannot run the pipeline on an empty store");
  }

  // A sample larger than the store degenerates to "cluster everything":
  // clamp instead of failing, and record that we did.
  const uint64_t effective_sample =
      std::min<uint64_t>(options.sample_size, store_count);
  if (effective_sample < options.sample_size) {
    diag::AddCounter(m, "sample.clamped", 1);
  }
  const CheckpointFingerprint fingerprint =
      MakeFingerprint(store_count, effective_sample, options);

  // Try to resume. Anything wrong with the checkpoint — missing, torn,
  // bit-rotted, or written by a different run — falls back to a clean
  // fresh start; only an injected crash (simulated process death in the
  // fault tests) propagates.
  PipelineCheckpoint cp;
  bool have_checkpoint = false;
  if (options.resume) {
    auto loaded = LoadCheckpoint(options.checkpoint_path);
    if (loaded.ok()) {
      if (loaded->fingerprint == fingerprint) {
        cp = std::move(*loaded);
        have_checkpoint = true;
      } else {
        diag::AddCounter(m, "checkpoint.mismatch", 1);
      }
    } else if (fail::IsInjectedCrash(loaded.status())) {
      return loaded.status();
    } else if (loaded.status().IsCorruption()) {
      diag::AddCounter(m, "checkpoint.invalid", 1);
    } else if (loaded.status().IsIOError() || loaded.status().IsNotFound()) {
      diag::AddCounter(m, "checkpoint.missing", 1);
    } else {
      return loaded.status();
    }
  }

  TransactionDataset sample;
  if (have_checkpoint) {
    // Sample phase restored verbatim: the clustering's member lists feed
    // TransactionLabeler::Build's RNG draws, so reusing them bit-for-bit
    // keeps the resumed labels identical to an uninterrupted run.
    out.resumed = true;
    diag::AddCounter(m, "pipeline.resumed", 1);
    for (const Transaction& tx : cp.sample) sample.AddTransaction(tx);
    out.sample_rows = cp.sample_rows;
    out.sample_result.clustering = cp.clustering;
    out.sample_result.merges = cp.merges;
    out.sample_result.stats = cp.stats;
  } else {
    Result<SampledClustering> sc =
        SampleAndCluster(store_path, options, effective_sample, &retry_stats);
    if (!sc.ok()) return sc.status();
    sample = std::move(sc->sample);
    out.sample_rows = std::move(sc->rows);
    out.sample_seconds = sc->sample_seconds;
    out.sample_result = std::move(sc->rock);
    out.cluster_seconds = sc->cluster_seconds;

    cp.fingerprint = fingerprint;
    cp.sample_rows = out.sample_rows;
    cp.sample = std::move(sc->picked);
    cp.clustering = out.sample_result.clustering;
    cp.merges = out.sample_result.merges;
    cp.stats = out.sample_result.stats;
  }

  // Pin the shard plan so resumed runs replan the exact same boundaries
  // whatever --label-threads they are given (core/labeling.h).
  const size_t threads = ResolveThreads(options.rock.label_threads);
  const uint64_t num_shards =
      have_checkpoint
          ? cp.num_shards
          : (threads <= 1
                 ? 1
                 : std::min<uint64_t>(store_count,
                                      static_cast<uint64_t>(threads) * 4));
  uint64_t checkpoint_writes = 0;
  if (!have_checkpoint) {
    cp.num_shards = num_shards;
    cp.shard_done.assign(static_cast<size_t>(num_shards), 0);
    cp.shard_stats.assign(static_cast<size_t>(num_shards),
                          TransactionLabeler::AssignStats{});
    cp.shard_outliers.assign(static_cast<size_t>(num_shards), 0);
    cp.assignments.assign(static_cast<size_t>(store_count), kUnassigned);
    cp.ground_truth.assign(static_cast<size_t>(store_count), kNoLabel);
    if (checkpointing) {
      // Persist the sample phase before the long scan starts, so even a
      // crash in the very first shard resumes without re-clustering.
      ROCK_RETURN_IF_ERROR(RetryTransient(
          options.retry,
          [&] { return SaveCheckpoint(cp, options.checkpoint_path); },
          &retry_stats, options.retry_sleeper));
      ++checkpoint_writes;
    }
  }

  // Pass 2: stream the store through the labeler, sharded over
  // options.rock.label_threads workers.
  Timer label_timer;
  auto labeler =
      TransactionLabeler::Build(sample, out.sample_result.clustering,
                                options.rock, options.labeling);
  ROCK_RETURN_IF_ERROR(labeler.status());
  LabelStoreOptions label_options;
  label_options.num_threads = options.rock.label_threads;
  label_options.metrics = m;
  label_options.num_shards = num_shards;
  label_options.retry = options.retry;
  label_options.retry_sleeper = options.retry_sleeper;
  LabelResumeState resume_state;
  if (have_checkpoint) {
    resume_state.num_shards = cp.num_shards;
    resume_state.shard_done = &cp.shard_done;
    resume_state.assignments = &cp.assignments;
    resume_state.ground_truth = &cp.ground_truth;
    resume_state.shard_stats = &cp.shard_stats;
    resume_state.shard_outliers = &cp.shard_outliers;
    label_options.resume = &resume_state;
  }
  if (checkpointing) {
    // Serialized by LabelStore, so mutating the shared checkpoint object
    // here is race-free; the completed shard's rows are final.
    label_options.on_shard_complete =
        [&](const LabelShardCompletion& done) -> Status {
      cp.shard_done[done.shard] = 1;
      std::copy(done.assignments, done.assignments + done.range.num_rows,
                cp.assignments.begin() +
                    static_cast<ptrdiff_t>(done.range.first_row));
      std::copy(done.ground_truth, done.ground_truth + done.range.num_rows,
                cp.ground_truth.begin() +
                    static_cast<ptrdiff_t>(done.range.first_row));
      cp.shard_stats[done.shard] = done.stats;
      cp.shard_outliers[done.shard] = done.outliers;
      ROCK_RETURN_IF_ERROR(RetryTransient(
          options.retry,
          [&] { return SaveCheckpoint(cp, options.checkpoint_path); },
          &retry_stats, options.retry_sleeper));
      ++checkpoint_writes;
      return Status::OK();
    };
  }
  auto labeling = LabelStore(store_path, *labeler, label_options);
  ROCK_RETURN_IF_ERROR(labeling.status());
  out.labeling = std::move(*labeling);
  out.shards_skipped = out.labeling.shards_skipped;
  out.label_seconds = label_timer.ElapsedSeconds();

  // The run completed; the checkpoint has nothing left to resume. The
  // removal goes through the "checkpoint.remove" failpoint site and the
  // transient-retry schedule like every other checkpoint I/O. A removal
  // that still fails after retries must NOT fail the run — the output is
  // already complete — but it is counted (checkpoint.remove_failed), and
  // the stale checkpoint it leaves behind is harmless: its fingerprint
  // matches and every shard is marked done, so a later --resume restores
  // the identical result instead of recomputing. Only an injected crash
  // (simulated process death) propagates.
  bool checkpoint_removed = false;
  if (checkpointing) {
    const Status removed = RetryTransient(
        options.retry,
        [&]() -> Status {
          ROCK_RETURN_IF_ERROR(fail::ConsultRead("checkpoint.remove"));
          if (std::remove(options.checkpoint_path.c_str()) != 0 &&
              errno != ENOENT) {
            return Status::IOError("cannot remove checkpoint '" +
                                   options.checkpoint_path + "'");
          }
          return Status::OK();
        },
        &retry_stats, options.retry_sleeper);
    if (fail::IsInjectedCrash(removed)) return removed;
    checkpoint_removed = removed.ok();
    diag::AddCounter(m,
                     checkpoint_removed ? "checkpoint.removed"
                                        : "checkpoint.remove_failed",
                     1);
  }

  if (collect) {
    registry.RecordSeconds("stage.sample", out.sample_seconds);
    registry.RecordSeconds("stage.label", out.label_seconds);
    registry.AddCounter("sample.rows", out.sample_rows.size());
    registry.AddCounter("label.rows", out.labeling.assignments.size());
    registry.AddCounter("label.outliers", out.labeling.num_outliers);
    if (checkpointing) {
      registry.AddCounter("checkpoint.writes", checkpoint_writes);
    }
    // LabelStore already recorded its own retry counters into this
    // registry; these add the sampling/checkpoint share on top. The gauge
    // is last-write, so it carries the full total.
    registry.AddCounter("retry.attempts", retry_stats.attempts);
    registry.AddCounter("retry.retries", retry_stats.retries);
    registry.AddCounter("retry.exhausted", retry_stats.exhausted);
    registry.SetGauge(
        "retry.backoff_ms",
        retry_stats.backoff_ms + out.labeling.retry_stats.backoff_ms);
    for (const auto& [site, fired] : fail::FiredSnapshot()) {
      registry.AddCounter("fault.fired." + site, fired);
    }
    out.metrics = registry.Snapshot();
    out.metrics.Merge(out.sample_result.metrics);
  }
  return out;
}

Result<ModelBuildResult> BuildModel(const std::string& store_path,
                                    const ModelBuildOptions& options) {
  const PipelineOptions& p = options.pipeline;
  ROCK_RETURN_IF_ERROR(p.rock.Validate());
  if (p.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be > 0");
  }
  if (!p.rock.failpoints.empty()) {
    ROCK_RETURN_IF_ERROR(fail::Configure(p.rock.failpoints));
  }
  if (p.resume && p.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "resume requires a checkpoint_path to resume from");
  }

  diag::MetricsRegistry registry;
  const bool collect = p.rock.diag.collect_metrics;
  diag::MetricsRegistry* m = collect ? &registry : nullptr;
  const bool checkpointing = !p.checkpoint_path.empty();

  ModelBuildResult out;
  RetryStats retry_stats;

  Result<uint64_t> count_or =
      CountStoreRows(store_path, p.retry, p.retry_sleeper, &retry_stats);
  if (!count_or.ok()) return count_or.status();
  const uint64_t store_count = *count_or;
  if (store_count == 0) {
    return Status::InvalidArgument("cannot build a model on an empty store");
  }
  const uint64_t effective_sample =
      std::min<uint64_t>(p.sample_size, store_count);
  if (effective_sample < p.sample_size) {
    diag::AddCounter(m, "sample.clamped", 1);
  }
  const CheckpointFingerprint fingerprint =
      MakeFingerprint(store_count, effective_sample, p);

  // Model rebuilds ride the PR-4 checkpoint spine: the sample+cluster
  // phase — the expensive part of a build — is persisted as a shard-free
  // checkpoint, and a resumed build restores it bit-for-bit, so a rebuild
  // interrupted between clustering and the bundle swap completes with a
  // byte-identical bundle instead of re-clustering. Same fallback rules as
  // RunRockPipeline: anything wrong with the checkpoint restarts cleanly.
  PipelineCheckpoint cp;
  bool have_checkpoint = false;
  if (p.resume) {
    auto loaded = LoadCheckpoint(p.checkpoint_path);
    if (loaded.ok()) {
      if (loaded->fingerprint == fingerprint) {
        cp = std::move(*loaded);
        have_checkpoint = true;
      } else {
        diag::AddCounter(m, "checkpoint.mismatch", 1);
      }
    } else if (fail::IsInjectedCrash(loaded.status())) {
      return loaded.status();
    } else if (loaded.status().IsCorruption()) {
      diag::AddCounter(m, "checkpoint.invalid", 1);
    } else if (loaded.status().IsIOError() || loaded.status().IsNotFound()) {
      diag::AddCounter(m, "checkpoint.missing", 1);
    } else {
      return loaded.status();
    }
  }

  TransactionDataset sample;
  if (have_checkpoint) {
    out.resumed = true;
    diag::AddCounter(m, "build.resumed", 1);
    for (const Transaction& tx : cp.sample) sample.AddTransaction(tx);
    out.sample_rows = cp.sample_rows;
    out.sample_result.clustering = cp.clustering;
    out.sample_result.merges = cp.merges;
    out.sample_result.stats = cp.stats;
  } else {
    Result<SampledClustering> sc =
        SampleAndCluster(store_path, p, effective_sample, &retry_stats);
    if (!sc.ok()) return sc.status();
    sample = std::move(sc->sample);
    out.sample_rows = std::move(sc->rows);
    out.sample_seconds = sc->sample_seconds;
    out.sample_result = std::move(sc->rock);
    out.cluster_seconds = sc->cluster_seconds;
    if (checkpointing) {
      cp.fingerprint = fingerprint;
      cp.sample_rows = out.sample_rows;
      cp.sample = std::move(sc->picked);
      cp.clustering = out.sample_result.clustering;
      cp.merges = out.sample_result.merges;
      cp.stats = out.sample_result.stats;
      cp.num_shards = 0;  // no labeling scan: the row arrays stay blank
      cp.assignments.assign(static_cast<size_t>(store_count), kUnassigned);
      cp.ground_truth.assign(static_cast<size_t>(store_count), kNoLabel);
      ROCK_RETURN_IF_ERROR(RetryTransient(
          p.retry, [&] { return SaveCheckpoint(cp, p.checkpoint_path); },
          &retry_stats, p.retry_sleeper));
    }
  }

  // Build the §4.6 labeler the same way the batch pipeline does, then
  // freeze its parts into the bundle. The serve layer reassembles it via
  // TransactionLabeler::FromParts, which recomputes the normalizers and
  // index identically — so serve answers match batch labels bit for bit.
  Timer build_timer;
  auto labeler = TransactionLabeler::Build(
      sample, out.sample_result.clustering, p.rock, p.labeling);
  ROCK_RETURN_IF_ERROR(labeler.status());

  out.bundle.fingerprint = fingerprint;
  out.bundle.theta = labeler->theta();
  out.bundle.f_exponent = labeler->f_exponent();
  out.bundle.labeling_sets.reserve(labeler->num_clusters());
  for (size_t c = 0; c < labeler->num_clusters(); ++c) {
    out.bundle.labeling_sets.push_back(labeler->labeling_set(c));
  }
  if (options.dictionary != nullptr) {
    out.bundle.dictionary.reserve(options.dictionary->size());
    for (size_t i = 0; i < options.dictionary->size(); ++i) {
      out.bundle.dictionary.push_back(
          options.dictionary->Name(static_cast<ItemId>(i)));
    }
  }

  // Profile the model against its own sample: the per-cluster share and
  // winning-neighbor-count distributions the drift detector compares
  // appended rows against (eval/drift.h). Deterministic — AssignDetailed
  // over a fixed sample — so resumed rebuilds freeze identical profiles.
  {
    ModelProfile& profile = out.bundle.profile;
    const size_t num_clusters = labeler->num_clusters();
    std::vector<uint64_t> won(num_clusters, 0);
    std::vector<double> neighbor_sum(num_clusters, 0.0);
    uint64_t outliers = 0;
    double score_sum = 0.0;
    TransactionLabeler::Scratch scratch;
    for (size_t i = 0; i < sample.size(); ++i) {
      const TransactionLabeler::AssignOutcome outcome =
          labeler->AssignDetailed(sample.transaction(i), &scratch, nullptr);
      if (outcome.cluster == kUnassigned) {
        ++outliers;
      } else {
        ++won[static_cast<size_t>(outcome.cluster)];
        neighbor_sum[static_cast<size_t>(outcome.cluster)] +=
            static_cast<double>(outcome.neighbors);
        score_sum += outcome.score;
      }
    }
    profile.rows = sample.size();
    if (profile.rows > 0) {
      const double rows = static_cast<double>(profile.rows);
      profile.outlier_share = static_cast<double>(outliers) / rows;
      profile.cluster_share.resize(num_clusters);
      profile.mean_neighbors.resize(num_clusters);
      for (size_t c = 0; c < num_clusters; ++c) {
        profile.cluster_share[c] = static_cast<double>(won[c]) / rows;
        profile.mean_neighbors[c] =
            won[c] > 0 ? neighbor_sum[c] / static_cast<double>(won[c]) : 0.0;
      }
      const uint64_t assigned = profile.rows - outliers;
      profile.mean_score =
          assigned > 0 ? score_sum / static_cast<double>(assigned) : 0.0;
    }
  }

  if (!options.model_path.empty()) {
    ROCK_RETURN_IF_ERROR(RetryTransient(
        p.retry,
        [&] { return SaveModelBundle(out.bundle, options.model_path); },
        &retry_stats, p.retry_sleeper));
    diag::AddCounter(m, "model.saved", 1);
  }
  out.build_seconds = build_timer.ElapsedSeconds();

  // The bundle is safely on disk (or was never requested): the rebuild
  // checkpoint has nothing left to resume. Same non-fatal removal
  // discipline as RunRockPipeline — only an injected crash propagates.
  if (checkpointing) {
    const Status removed = RetryTransient(
        p.retry,
        [&]() -> Status {
          ROCK_RETURN_IF_ERROR(fail::ConsultRead("checkpoint.remove"));
          if (std::remove(p.checkpoint_path.c_str()) != 0 &&
              errno != ENOENT) {
            return Status::IOError("cannot remove checkpoint '" +
                                   p.checkpoint_path + "'");
          }
          return Status::OK();
        },
        &retry_stats, p.retry_sleeper);
    if (fail::IsInjectedCrash(removed)) return removed;
    diag::AddCounter(
        m, removed.ok() ? "checkpoint.removed" : "checkpoint.remove_failed",
        1);
  }

  if (collect) {
    registry.RecordSeconds("stage.sample", out.sample_seconds);
    registry.RecordSeconds("stage.build", out.build_seconds);
    registry.AddCounter("sample.rows", out.sample_rows.size());
    registry.AddCounter("model.clusters", out.bundle.labeling_sets.size());
    registry.AddCounter("retry.attempts", retry_stats.attempts);
    registry.AddCounter("retry.retries", retry_stats.retries);
    registry.AddCounter("retry.exhausted", retry_stats.exhausted);
    registry.SetGauge("retry.backoff_ms", retry_stats.backoff_ms);
    for (const auto& [site, fired] : fail::FiredSnapshot()) {
      registry.AddCounter("fault.fired." + site, fired);
    }
    out.metrics = registry.Snapshot();
    out.metrics.Merge(out.sample_result.metrics);
  }
  return out;
}

}  // namespace rock
