#include "core/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/checkpoint.h"
#include "core/sampling.h"
#include "diag/metrics.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rock {

namespace {

/// The identity the checkpoint of this run must carry (core/checkpoint.h).
CheckpointFingerprint MakeFingerprint(uint64_t store_count,
                                      uint64_t effective_sample,
                                      const PipelineOptions& options) {
  CheckpointFingerprint fp;
  fp.store_count = store_count;
  fp.theta = options.rock.theta;
  fp.num_clusters = options.rock.num_clusters;
  fp.min_neighbors = options.rock.min_neighbors;
  fp.outlier_stop_multiple = options.rock.outlier_stop_multiple;
  fp.min_cluster_support = options.rock.min_cluster_support;
  fp.sample_size = effective_sample;
  fp.sample_seed = options.seed;
  fp.labeling_fraction = options.labeling.fraction;
  fp.min_labeling_points = options.labeling.min_labeling_points;
  fp.labeling_seed = options.labeling.seed;
  return fp;
}

}  // namespace

Result<PipelineResult> RunRockPipeline(const std::string& store_path,
                                       const PipelineOptions& options) {
  ROCK_RETURN_IF_ERROR(options.rock.Validate());
  if (options.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be > 0");
  }
  if (!options.rock.failpoints.empty()) {
    ROCK_RETURN_IF_ERROR(fail::Configure(options.rock.failpoints));
  }
  if (options.resume && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "resume requires a checkpoint_path to resume from");
  }

  diag::MetricsRegistry registry;
  const bool collect = options.rock.diag.collect_metrics;
  diag::MetricsRegistry* m = collect ? &registry : nullptr;
  const bool checkpointing = !options.checkpoint_path.empty();

  PipelineResult out;
  RetryStats retry_stats;  // sampling + checkpoint I/O (labeling has its own)

  // Row count first: it clamps the sample and keys the checkpoint
  // fingerprint. Retried — the open consults the "store.open" site.
  uint64_t store_count = 0;
  ROCK_RETURN_IF_ERROR(RetryTransient(
      options.retry,
      [&]() -> Status {
        auto reader = TransactionStoreReader::Open(store_path);
        ROCK_RETURN_IF_ERROR(reader.status());
        store_count = reader->count();
        return Status::OK();
      },
      &retry_stats, options.retry_sleeper));
  if (store_count == 0) {
    return Status::InvalidArgument(
        "cannot run the pipeline on an empty store");
  }

  // A sample larger than the store degenerates to "cluster everything":
  // clamp instead of failing, and record that we did.
  const uint64_t effective_sample =
      std::min<uint64_t>(options.sample_size, store_count);
  if (effective_sample < options.sample_size) {
    diag::AddCounter(m, "sample.clamped", 1);
  }
  const CheckpointFingerprint fingerprint =
      MakeFingerprint(store_count, effective_sample, options);

  // Try to resume. Anything wrong with the checkpoint — missing, torn,
  // bit-rotted, or written by a different run — falls back to a clean
  // fresh start; only an injected crash (simulated process death in the
  // fault tests) propagates.
  PipelineCheckpoint cp;
  bool have_checkpoint = false;
  if (options.resume) {
    auto loaded = LoadCheckpoint(options.checkpoint_path);
    if (loaded.ok()) {
      if (loaded->fingerprint == fingerprint) {
        cp = std::move(*loaded);
        have_checkpoint = true;
      } else {
        diag::AddCounter(m, "checkpoint.mismatch", 1);
      }
    } else if (fail::IsInjectedCrash(loaded.status())) {
      return loaded.status();
    } else if (loaded.status().IsCorruption()) {
      diag::AddCounter(m, "checkpoint.invalid", 1);
    } else if (loaded.status().IsIOError() || loaded.status().IsNotFound()) {
      diag::AddCounter(m, "checkpoint.missing", 1);
    } else {
      return loaded.status();
    }
  }

  TransactionDataset sample;
  if (have_checkpoint) {
    // Sample phase restored verbatim: the clustering's member lists feed
    // TransactionLabeler::Build's RNG draws, so reusing them bit-for-bit
    // keeps the resumed labels identical to an uninterrupted run.
    out.resumed = true;
    diag::AddCounter(m, "pipeline.resumed", 1);
    for (const Transaction& tx : cp.sample) sample.AddTransaction(tx);
    out.sample_rows = cp.sample_rows;
    out.sample_result.clustering = cp.clustering;
    out.sample_result.merges = cp.merges;
    out.sample_result.stats = cp.stats;
  } else {
    // Pass 1: streaming reservoir sample of the store. Retried as a unit —
    // the RNG and reservoir reset every attempt, so a retry after a
    // transient mid-stream error draws exactly the sample an undisturbed
    // pass would.
    Timer sample_timer;
    std::vector<Transaction> picked;
    std::vector<uint64_t> rows;
    ROCK_RETURN_IF_ERROR(RetryTransient(
        options.retry,
        [&]() -> Status {
          picked.clear();
          rows.clear();
          Rng rng(options.seed);
          auto reader = TransactionStoreReader::Open(store_path);
          ROCK_RETURN_IF_ERROR(reader.status());
          ReservoirSampler<Transaction> sampler(
              static_cast<size_t>(effective_sample), &rng);
          while (reader->Next()) sampler.Offer(reader->transaction());
          ROCK_RETURN_IF_ERROR(reader->status());
          // Keep sample rows in store order so results are stable and
          // reportable.
          std::vector<size_t> order(sampler.sample().size());
          std::iota(order.begin(), order.end(), size_t{0});
          std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return sampler.sample_indices()[a] < sampler.sample_indices()[b];
          });
          picked.reserve(order.size());
          rows.reserve(order.size());
          for (size_t idx : order) {
            picked.push_back(sampler.sample()[idx]);
            rows.push_back(sampler.sample_indices()[idx]);
          }
          return Status::OK();
        },
        &retry_stats, options.retry_sleeper));
    for (const Transaction& tx : picked) sample.AddTransaction(tx);
    out.sample_rows = std::move(rows);
    out.sample_seconds = sample_timer.ElapsedSeconds();

    // Cluster the sample.
    Timer cluster_timer;
    TransactionJaccard sim(sample);
    RockClusterer clusterer(options.rock);
    auto rock_result = clusterer.Cluster(sim);
    ROCK_RETURN_IF_ERROR(rock_result.status());
    out.sample_result = std::move(*rock_result);
    out.cluster_seconds = cluster_timer.ElapsedSeconds();

    cp.fingerprint = fingerprint;
    cp.sample_rows = out.sample_rows;
    cp.sample = std::move(picked);
    cp.clustering = out.sample_result.clustering;
    cp.merges = out.sample_result.merges;
    cp.stats = out.sample_result.stats;
  }

  // Pin the shard plan so resumed runs replan the exact same boundaries
  // whatever --label-threads they are given (core/labeling.h).
  const size_t threads = ResolveThreads(options.rock.label_threads);
  const uint64_t num_shards =
      have_checkpoint
          ? cp.num_shards
          : (threads <= 1
                 ? 1
                 : std::min<uint64_t>(store_count,
                                      static_cast<uint64_t>(threads) * 4));
  uint64_t checkpoint_writes = 0;
  if (!have_checkpoint) {
    cp.num_shards = num_shards;
    cp.shard_done.assign(static_cast<size_t>(num_shards), 0);
    cp.shard_stats.assign(static_cast<size_t>(num_shards),
                          TransactionLabeler::AssignStats{});
    cp.shard_outliers.assign(static_cast<size_t>(num_shards), 0);
    cp.assignments.assign(static_cast<size_t>(store_count), kUnassigned);
    cp.ground_truth.assign(static_cast<size_t>(store_count), kNoLabel);
    if (checkpointing) {
      // Persist the sample phase before the long scan starts, so even a
      // crash in the very first shard resumes without re-clustering.
      ROCK_RETURN_IF_ERROR(RetryTransient(
          options.retry,
          [&] { return SaveCheckpoint(cp, options.checkpoint_path); },
          &retry_stats, options.retry_sleeper));
      ++checkpoint_writes;
    }
  }

  // Pass 2: stream the store through the labeler, sharded over
  // options.rock.label_threads workers.
  Timer label_timer;
  auto labeler =
      TransactionLabeler::Build(sample, out.sample_result.clustering,
                                options.rock, options.labeling);
  ROCK_RETURN_IF_ERROR(labeler.status());
  LabelStoreOptions label_options;
  label_options.num_threads = options.rock.label_threads;
  label_options.metrics = m;
  label_options.num_shards = num_shards;
  label_options.retry = options.retry;
  label_options.retry_sleeper = options.retry_sleeper;
  LabelResumeState resume_state;
  if (have_checkpoint) {
    resume_state.num_shards = cp.num_shards;
    resume_state.shard_done = &cp.shard_done;
    resume_state.assignments = &cp.assignments;
    resume_state.ground_truth = &cp.ground_truth;
    resume_state.shard_stats = &cp.shard_stats;
    resume_state.shard_outliers = &cp.shard_outliers;
    label_options.resume = &resume_state;
  }
  if (checkpointing) {
    // Serialized by LabelStore, so mutating the shared checkpoint object
    // here is race-free; the completed shard's rows are final.
    label_options.on_shard_complete =
        [&](const LabelShardCompletion& done) -> Status {
      cp.shard_done[done.shard] = 1;
      std::copy(done.assignments, done.assignments + done.range.num_rows,
                cp.assignments.begin() +
                    static_cast<ptrdiff_t>(done.range.first_row));
      std::copy(done.ground_truth, done.ground_truth + done.range.num_rows,
                cp.ground_truth.begin() +
                    static_cast<ptrdiff_t>(done.range.first_row));
      cp.shard_stats[done.shard] = done.stats;
      cp.shard_outliers[done.shard] = done.outliers;
      ROCK_RETURN_IF_ERROR(RetryTransient(
          options.retry,
          [&] { return SaveCheckpoint(cp, options.checkpoint_path); },
          &retry_stats, options.retry_sleeper));
      ++checkpoint_writes;
      return Status::OK();
    };
  }
  auto labeling = LabelStore(store_path, *labeler, label_options);
  ROCK_RETURN_IF_ERROR(labeling.status());
  out.labeling = std::move(*labeling);
  out.shards_skipped = out.labeling.shards_skipped;
  out.label_seconds = label_timer.ElapsedSeconds();

  // The run completed; the checkpoint has nothing left to resume.
  if (checkpointing) {
    std::remove(options.checkpoint_path.c_str());
  }

  if (collect) {
    registry.RecordSeconds("stage.sample", out.sample_seconds);
    registry.RecordSeconds("stage.label", out.label_seconds);
    registry.AddCounter("sample.rows", out.sample_rows.size());
    registry.AddCounter("label.rows", out.labeling.assignments.size());
    registry.AddCounter("label.outliers", out.labeling.num_outliers);
    if (checkpointing) {
      registry.AddCounter("checkpoint.writes", checkpoint_writes);
    }
    // LabelStore already recorded its own retry counters into this
    // registry; these add the sampling/checkpoint share on top. The gauge
    // is last-write, so it carries the full total.
    registry.AddCounter("retry.attempts", retry_stats.attempts);
    registry.AddCounter("retry.retries", retry_stats.retries);
    registry.AddCounter("retry.exhausted", retry_stats.exhausted);
    registry.SetGauge(
        "retry.backoff_ms",
        retry_stats.backoff_ms + out.labeling.retry_stats.backoff_ms);
    for (const auto& [site, fired] : fail::FiredSnapshot()) {
      registry.AddCounter("fault.fired." + site, fired);
    }
    out.metrics = registry.Snapshot();
    out.metrics.Merge(out.sample_result.metrics);
  }
  return out;
}

}  // namespace rock
