#include "core/outliers.h"

namespace rock {

std::vector<PointIndex> FindIsolatedPoints(const NeighborGraph& graph,
                                           size_t min_neighbors) {
  std::vector<PointIndex> out;
  for (size_t p = 0; p < graph.size(); ++p) {
    if (graph.Degree(p) < min_neighbors) {
      out.push_back(static_cast<PointIndex>(p));
    }
  }
  return out;
}

std::vector<size_t> FindLowSupportClusters(const Clustering& clustering,
                                           size_t min_support) {
  std::vector<size_t> out;
  for (size_t c = 0; c < clustering.clusters.size(); ++c) {
    if (clustering.clusters[c].size() < min_support) out.push_back(c);
  }
  return out;
}

}  // namespace rock
