// librock — core/criterion.h
//
// The criterion function of paper §3.3:
//
//   E_l = Σ_i  n_i · ( Σ_{p,q ∈ C_i} link(p, q) ) / n_i^{1+2f(θ)}
//
// The best clustering maximizes E_l. ROCK's merge rule (goodness, §4.2) is a
// greedy heuristic toward this target; we expose E_l so experiments and
// ablations can score clusterings directly.

#ifndef ROCK_CORE_CRITERION_H_
#define ROCK_CORE_CRITERION_H_

#include "core/cluster.h"
#include "core/goodness.h"
#include "graph/links.h"

namespace rock {

/// Sum of link(p, q) over unordered point pairs inside cluster `c`.
uint64_t IntraClusterLinks(const LinkMatrix& links,
                           const std::vector<PointIndex>& members);

/// Evaluates E_l for a clustering against point-level link counts.
/// Outlier points contribute nothing.
double CriterionFunction(const Clustering& clustering, const LinkMatrix& links,
                         const GoodnessMeasure& goodness);

}  // namespace rock

#endif  // ROCK_CORE_CRITERION_H_
