#include "core/sampling.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rock {

std::vector<size_t> SampleIndices(size_t n, size_t k, Rng* rng) {
  assert(k <= n);
  std::vector<size_t> picked = rng->SampleWithoutReplacement(n, k);
  std::sort(picked.begin(), picked.end());
  return picked;
}

size_t MinSampleSize(size_t population, size_t min_cluster_size,
                     double fraction, double delta) {
  assert(min_cluster_size > 0 && min_cluster_size <= population);
  assert(fraction > 0.0 && fraction <= 1.0);
  assert(delta > 0.0 && delta < 1.0);
  const double n = static_cast<double>(population);
  const double u = static_cast<double>(min_cluster_size);
  const double log_inv_delta = std::log(1.0 / delta);
  const double s =
      fraction * n + (n / u) * log_inv_delta +
      (n / u) * std::sqrt(log_inv_delta * log_inv_delta +
                          2.0 * fraction * u * log_inv_delta);
  const double capped = std::min(std::ceil(s), n);
  return static_cast<size_t>(capped);
}

uint64_t VitterSkipX(uint64_t seen, size_t k, Rng* rng) {
  // Algorithm X [Vit85]: draw V uniform in (0,1); skip S is the smallest
  // integer with  prod_{i=0..S} (seen+1+i-k)/(seen+1+i)  <= V  — found by
  // scanning. Expected O(skip) time, no large-deviation math needed.
  assert(seen >= k);
  double v = 0.0;
  do {
    v = rng->UniformDouble();
  } while (v == 0.0);
  uint64_t s = 0;
  double quot = static_cast<double>(seen + 1 - k) /
                static_cast<double>(seen + 1);
  while (quot > v) {
    ++s;
    const double t = static_cast<double>(seen + 1 + s);
    quot *= (t - static_cast<double>(k)) / t;
  }
  return s;
}

}  // namespace rock
