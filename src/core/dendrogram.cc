#include "core/dendrogram.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace rock {

namespace {

/// Union-find over internal cluster ids with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t child, uint32_t root) {
    parent_[Find(child)] = Find(root);
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

Result<Dendrogram> Dendrogram::FromRockResult(const RockResult& result,
                                              size_t num_points) {
  if (result.clustering.assignment.size() != num_points) {
    return Status::InvalidArgument(
        "num_points does not match the result's clustering");
  }
  Dendrogram d;
  d.num_points_ = num_points;
  d.merges_ = result.merges;
  d.participates_.assign(num_points, false);
  for (size_t p = 0; p < num_points; ++p) {
    if (result.clustering.assignment[p] != kUnassigned) {
      d.participates_[p] = true;
    }
  }
  for (const MergeRecord& m : d.merges_) {
    if (m.merged < num_points || m.left >= m.merged || m.right >= m.merged) {
      return Status::InvalidArgument("corrupt merge history");
    }
    if (m.left < num_points) d.participates_[m.left] = true;
    if (m.right < num_points) d.participates_[m.right] = true;
  }
  for (size_t p = 0; p < num_points; ++p) {
    if (d.participates_[p]) ++d.num_participants_;
  }
  return d;
}

Clustering Dendrogram::CutAfterMerges(size_t m) const {
  m = std::min(m, merges_.size());
  const size_t id_space =
      merges_.empty() ? num_points_
                      : std::max<size_t>(num_points_,
                                         merges_.back().merged + 1);
  UnionFind uf(id_space);
  for (size_t i = 0; i < m; ++i) {
    uf.Union(merges_[i].left, merges_[i].merged);
    uf.Union(merges_[i].right, merges_[i].merged);
  }
  std::vector<ClusterIndex> assignment(num_points_, kUnassigned);
  std::unordered_map<uint32_t, ClusterIndex> root_to_cluster;
  for (size_t p = 0; p < num_points_; ++p) {
    if (!participates_[p]) continue;
    const uint32_t root = uf.Find(static_cast<uint32_t>(p));
    auto it = root_to_cluster
                  .emplace(root,
                           static_cast<ClusterIndex>(root_to_cluster.size()))
                  .first;
    assignment[p] = it->second;
  }
  Clustering out = Clustering::FromAssignment(std::move(assignment));
  out.SortBySizeDescending();
  return out;
}

Clustering Dendrogram::CutAtK(size_t k) const {
  if (k == 0) k = 1;
  if (num_participants_ <= k) return CutAfterMerges(0);
  const size_t wanted_merges = num_participants_ - k;
  return CutAfterMerges(std::min(wanted_merges, merges_.size()));
}

std::string Dendrogram::ToNewick() const {
  // children[id] = (left, right) for merged nodes.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> children;
  std::unordered_map<uint32_t, double> goodness;
  std::vector<bool> consumed_point(num_points_, false);
  std::unordered_map<uint32_t, bool> consumed_merged;
  for (const MergeRecord& m : merges_) {
    children[m.merged] = {m.left, m.right};
    goodness[m.merged] = m.goodness;
    for (uint32_t side : {m.left, m.right}) {
      if (side < num_points_) {
        consumed_point[side] = true;
      } else {
        consumed_merged[side] = true;
      }
    }
  }

  // Roots: merged nodes never consumed, plus participating loose points.
  std::vector<uint32_t> roots;
  for (const MergeRecord& m : merges_) {
    if (consumed_merged.find(m.merged) == consumed_merged.end()) {
      roots.push_back(m.merged);
    }
  }
  for (size_t p = 0; p < num_points_; ++p) {
    if (participates_[p] && !consumed_point[p]) {
      roots.push_back(static_cast<uint32_t>(p));
    }
  }
  std::sort(roots.begin(), roots.end());

  // Iterative rendering (merge chains can be deep).
  std::string out;
  auto render = [&](uint32_t root) {
    struct Frame {
      uint32_t id;
      int stage;  // 0 = open, 1 = between children, 2 = close
    };
    std::vector<Frame> stack{{root, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      auto it = children.find(f.id);
      if (it == children.end()) {
        out += "p" + std::to_string(f.id);
        stack.pop_back();
        continue;
      }
      if (f.stage == 0) {
        out += "(";
        f.stage = 1;
        stack.push_back({it->second.first, 0});
      } else if (f.stage == 1) {
        out += ",";
        f.stage = 2;
        stack.push_back({it->second.second, 0});
      } else {
        out += ")g=" + FormatDouble(goodness[f.id], 3);
        stack.pop_back();
      }
    }
  };

  if (roots.size() == 1) {
    render(roots[0]);
  } else {
    out += "(";
    for (size_t r = 0; r < roots.size(); ++r) {
      if (r > 0) out += ",";
      render(roots[r]);
    }
    out += ")";
  }
  out += ";";
  return out;
}

}  // namespace rock
