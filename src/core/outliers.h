// librock — core/outliers.h
//
// Outlier-detection helpers (paper §4.6). The RockClusterer embeds both
// stages (isolated-point pruning and small-cluster weeding); these free
// functions expose the same predicates for analysis, tests and the labeling
// phase's "no neighbors anywhere" fallback.

#ifndef ROCK_CORE_OUTLIERS_H_
#define ROCK_CORE_OUTLIERS_H_

#include <vector>

#include "core/cluster.h"
#include "graph/neighbors.h"

namespace rock {

/// Points with fewer than `min_neighbors` neighbors — the paper's
/// "relatively isolated from the rest" points that are discarded before
/// clustering. Returned sorted.
std::vector<PointIndex> FindIsolatedPoints(const NeighborGraph& graph,
                                           size_t min_neighbors);

/// Indices of clusters whose size is below `min_support` — candidates for
/// the weeding stage ("clusters that have very little support").
std::vector<size_t> FindLowSupportClusters(const Clustering& clustering,
                                           size_t min_support);

}  // namespace rock

#endif  // ROCK_CORE_OUTLIERS_H_
