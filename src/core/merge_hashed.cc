// librock — core/merge_hashed.cc
//
// The original hash-table merge engine: per-cluster std::unordered_map link
// tables and O(1)-probe relinking. Superseded as the default by the flat
// engine (core/merge_flat.cc) but kept behind the same API as the reference
// oracle — differential tests assert the two engines produce bit-identical
// merge sequences, and the perf-smoke harness measures the flat engine's
// speedup against this one.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/timer.h"
#include "core/criterion.h"
#include "core/merge_engine.h"
#include "diag/invariants.h"
#include "graph/parallel.h"
#include "util/updatable_heap.h"

namespace rock::internal {

namespace {

/// Internal cluster id. Initial clusters take ids 0 … n−1; every merge mints
/// the next id, so ids never exceed 2n−1.
using ClusterId = uint32_t;

constexpr double kNoCandidate = -std::numeric_limits<double>::infinity();

/// Live-cluster bookkeeping for the Fig. 3 merge loop.
struct ClusterState {
  std::vector<PointIndex> members;
  /// Cross-link counts to other live clusters (the paper's link[C_i, C_j]).
  std::unordered_map<ClusterId, uint64_t> links;
  /// The paper's local heap q[i]: candidate partners ordered by goodness.
  UpdatableHeap<ClusterId, double> local;
};

/// The merge engine: owns all live clusters and both heap layers.
class HashedMergeEngine {
 public:
  HashedMergeEngine(const NeighborGraph& graph, const RockOptions& options)
      : options_(options), goodness_(options), graph_(graph) {}

  RockResult Run() {
    Timer total_timer;
    RockResult result;
    result.stats.num_points = graph_.size();
    result.stats.average_degree = graph_.AverageDegree();
    result.stats.max_degree = graph_.MaxDegree();

    diag::MetricsRegistry registry;
    metrics_ = options_.diag.collect_metrics ? &registry : nullptr;
    check_every_ =
        diag::InvariantCheckInterval(options_.diag.invariant_check_every);

    PruneIsolatedPoints();
    result.stats.num_pruned_points = pruned_.size();

    Timer link_timer;
    LinkMatrix links = ComputeLinkStage(graph_, options_, metrics_);
    // This engine probes hash rows throughout the merge loop; materialize
    // them here so a packed-built (CSR-only) matrix charges the conversion
    // to the link stage instead of to stage.merge.
    links.MaterializeHashRows();
    result.stats.link_seconds = link_timer.ElapsedSeconds();
    if (metrics_ != nullptr) {
      metrics_->RecordSeconds("stage.links", result.stats.link_seconds);
      metrics_->AddCounter("graph.points", graph_.size());
      metrics_->AddCounter("graph.edges", graph_.NumEdges());
      metrics_->AddCounter("graph.max_degree", graph_.MaxDegree());
      metrics_->SetGauge("graph.average_degree", graph_.AverageDegree());
      metrics_->AddCounter("prune.isolated_points", pruned_.size());
      metrics_->AddCounter("links.nonzero_pairs", links.NumNonZeroPairs());
      metrics_->AddCounter("links.total", links.TotalLinks());
    }
    if (check_every_ > 0) {
      diag::CheckNeighborGraph(graph_, &invariant_report_);
      diag::CheckLinkMatrixSymmetry(links, &invariant_report_);
    }

    Timer merge_timer;
    InitializeClusters(links);
    if (metrics_ != nullptr) {
      size_t local_entries = 0;
      for (const auto& state : states_) {
        if (state != nullptr) local_entries += state->local.size();
      }
      metrics_->MaxCounter("heap.global_peak", global_.size());
      metrics_->MaxCounter("heap.local_entries_peak", local_entries);
    }
    if (check_every_ > 0) VerifyBookkeeping(links);
    MergeLoop(&result, links);
    if (check_every_ > 0) VerifyBookkeeping(links);
    result.stats.merge_seconds = merge_timer.ElapsedSeconds();

    BuildClustering(&result);
    result.stats.total_seconds = total_timer.ElapsedSeconds();
    result.stats.criterion_value =
        CriterionFunction(result.clustering, links, goodness_);
    if (metrics_ != nullptr) {
      metrics_->RecordSeconds("stage.merge", result.stats.merge_seconds);
      metrics_->RecordSeconds("stage.total", result.stats.total_seconds);
      metrics_->AddCounter("merge.merges", result.stats.num_merges);
      metrics_->AddCounter("merge.goodness_updates", goodness_updates_);
      metrics_->AddCounter("weed.clusters", result.stats.num_weeded_clusters);
      metrics_->AddCounter("weed.points", result.stats.num_weeded_points);
      metrics_->AddCounter("diag.invariant_checks",
                           invariant_report_.checks_run());
      metrics_->AddCounter("diag.invariant_violations",
                           invariant_report_.violations().size());
      metrics_->SetGauge("criterion.value", result.stats.criterion_value);
      result.metrics = registry.Snapshot();
    }
    metrics_ = nullptr;
    return result;
  }

 private:
  void PruneIsolatedPoints() {
    for (size_t p = 0; p < graph_.size(); ++p) {
      if (graph_.Degree(p) < options_.min_neighbors) {
        pruned_.push_back(static_cast<PointIndex>(p));
      }
    }
  }

  bool IsPruned(PointIndex p) const {
    return std::binary_search(pruned_.begin(), pruned_.end(), p);
  }

  void InitializeClusters(const LinkMatrix& links) {
    const size_t n = graph_.size();
    states_.resize(2 * n);  // ids 0 … 2n−1 suffice for n−1 merges
    for (PointIndex p = 0; p < n; ++p) {
      if (IsPruned(p)) continue;
      auto state = std::make_unique<ClusterState>();
      state->members.push_back(p);
      states_[p] = std::move(state);
      ++num_live_;
    }
    next_id_ = static_cast<ClusterId>(n);

    // Seed cross-links and local heaps from the point-level link counts.
    // Links to pruned points are ignored: pruned outliers never participate.
    for (PointIndex p = 0; p < n; ++p) {
      if (states_[p] == nullptr) continue;
      auto& state = *states_[p];
      for (const auto& [q, count] : links.Row(p)) {
        if (states_[q] == nullptr) continue;
        state.links.emplace(q, count);
        state.local.InsertOrUpdate(q, goodness_.Goodness(count, 1, 1));
      }
    }
    for (PointIndex p = 0; p < n; ++p) {
      if (states_[p] != nullptr) global_.InsertOrUpdate(p, LocalBest(p));
    }
  }

  double LocalBest(ClusterId c) const {
    const auto& local = states_[c]->local;
    return local.empty() ? kNoCandidate : local.Top().priority;
  }

  void MergeLoop(RockResult* result, const LinkMatrix& links) {
    const size_t k = options_.num_clusters;
    const size_t weed_at = WeedThreshold();
    bool weeded = (weed_at == 0);

    while (num_live_ > k) {
      if (!weeded && num_live_ <= weed_at) {
        WeedSmallClusters(result);
        weeded = true;
        continue;
      }
      if (global_.empty()) break;
      const auto top = global_.Top();
      if (top.priority == kNoCandidate) break;  // all cross-links are zero
      const ClusterId u = top.key;
      const ClusterId v = states_[u]->local.Top().key;
      Merge(u, v, result);
      if (check_every_ > 0 &&
          result->stats.num_merges % check_every_ == 0) {
        VerifyBookkeeping(links);
      }
    }
    // A weeding pause configured below k (or exactly at k) still applies
    // when the loop exits normally.
    if (!weeded && num_live_ <= weed_at) {
      WeedSmallClusters(result);
    }
  }

  size_t WeedThreshold() const {
    if (options_.outlier_stop_multiple <= 0.0) return 0;
    const double raw = options_.outlier_stop_multiple *
                       static_cast<double>(options_.num_clusters);
    return static_cast<size_t>(std::ceil(raw));
  }

  void Merge(ClusterId u, ClusterId v, RockResult* result) {
    ClusterState& su = *states_[u];
    ClusterState& sv = *states_[v];
    const ClusterId w = next_id_++;
    auto sw = std::make_unique<ClusterState>();

    sw->members.reserve(su.members.size() + sv.members.size());
    sw->members.insert(sw->members.end(), su.members.begin(),
                       su.members.end());
    sw->members.insert(sw->members.end(), sv.members.begin(),
                       sv.members.end());
    std::sort(sw->members.begin(), sw->members.end());
    const size_t nw = sw->members.size();

    result->merges.push_back(MergeRecord{
        u, v, w, goodness_.Goodness(su.links.at(v), su.members.size(),
                                    sv.members.size()),
        nw});
    ++result->stats.num_merges;

    global_.Erase(u);
    global_.Erase(v);

    // Fig. 3 steps 10–15: every x linked to u or v relinks to w.
    auto relink = [&](const std::unordered_map<ClusterId, uint64_t>& src) {
      for (const auto& [x, _] : src) {
        if (x == u || x == v) continue;
        if (sw->links.count(x) > 0) continue;  // already handled via u
        ClusterState& sx = *states_[x];
        uint64_t count = 0;
        if (auto it = sx.links.find(u); it != sx.links.end()) {
          count += it->second;
          sx.links.erase(it);
        }
        if (auto it = sx.links.find(v); it != sx.links.end()) {
          count += it->second;
          sx.links.erase(it);
        }
        sx.local.Erase(u);
        sx.local.Erase(v);
        ++goodness_updates_;
        const double g = goodness_.Goodness(count, sx.members.size(), nw);
        sx.links.emplace(w, count);
        sx.local.InsertOrUpdate(w, g);
        sw->links.emplace(x, count);
        sw->local.InsertOrUpdate(x, g);
        global_.InsertOrUpdate(x, LocalBest(x));
      }
    };
    relink(su.links);
    relink(sv.links);

    states_[u].reset();
    states_[v].reset();
    states_[w] = std::move(sw);
    --num_live_;  // two die, one is born
    global_.InsertOrUpdate(w, LocalBest(w));
  }

  void WeedSmallClusters(RockResult* result) {
    std::vector<ClusterId> victims;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] != nullptr &&
          states_[c]->members.size() < options_.min_cluster_support) {
        victims.push_back(c);
      }
    }
    for (ClusterId c : victims) {
      ClusterState& sc = *states_[c];
      result->stats.num_weeded_points += sc.members.size();
      for (PointIndex p : sc.members) weeded_points_.push_back(p);
      for (const auto& [x, _] : sc.links) {
        if (states_[x] == nullptr) continue;
        ClusterState& sx = *states_[x];
        sx.links.erase(c);
        sx.local.Erase(c);
        global_.InsertOrUpdate(x, LocalBest(x));
      }
      global_.Erase(c);
      states_[c].reset();
      --num_live_;
      ++result->stats.num_weeded_clusters;
    }
  }

  /// Re-derives the merge loop's redundant state from first principles and
  /// reports every disagreement (paper Fig. 3 bookkeeping: cluster
  /// membership partition, cross-link maps, local heaps, global heap).
  /// O(live² + Σ point-link entries) — debug cadence only, never on by
  /// default (see diag::InvariantCheckInterval).
  void VerifyBookkeeping(const LinkMatrix& links) {
    invariant_report_.NoteCheck();
    constexpr ClusterId kNoCluster = std::numeric_limits<ClusterId>::max();

    // (a) Live-cluster census and the monotone merge identity: every merge
    // retires two clusters and mints one, weeding only retires.
    size_t live = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] != nullptr) ++live;
    }
    if (live != num_live_) {
      invariant_report_.Report(
          "merge.live_count", "num_live_ = " + std::to_string(num_live_) +
                                  " but census found " +
                                  std::to_string(live));
    }

    // (b) Membership partition: each unpruned, unweeded point sits in
    // exactly one live cluster.
    std::vector<PointIndex> weeded_sorted = weeded_points_;
    std::sort(weeded_sorted.begin(), weeded_sorted.end());
    std::vector<ClusterId> cluster_of(graph_.size(), kNoCluster);
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] == nullptr) continue;
      for (PointIndex p : states_[c]->members) {
        if (cluster_of[p] != kNoCluster) {
          invariant_report_.Report(
              "merge.partition", "point " + std::to_string(p) +
                                     " is in clusters " +
                                     std::to_string(cluster_of[p]) + " and " +
                                     std::to_string(c));
        }
        cluster_of[p] = c;
      }
    }
    for (size_t p = 0; p < graph_.size(); ++p) {
      const bool excluded =
          IsPruned(static_cast<PointIndex>(p)) ||
          std::binary_search(weeded_sorted.begin(), weeded_sorted.end(),
                             static_cast<PointIndex>(p));
      if (excluded == (cluster_of[p] != kNoCluster)) {
        invariant_report_.Report(
            "merge.partition",
            "point " + std::to_string(p) +
                (excluded ? " is pruned/weeded but still clustered"
                          : " is unassigned but not pruned/weeded"));
      }
    }

    // (c) Cross-link maps against a fresh recount from the point links.
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] == nullptr) continue;
      const ClusterState& sc = *states_[c];
      std::unordered_map<ClusterId, uint64_t> expect;
      for (PointIndex p : sc.members) {
        for (const auto& [q, count] : links.Row(p)) {
          const ClusterId other = cluster_of[q];
          if (other != kNoCluster && other != c) expect[other] += count;
        }
      }
      if (expect.size() != sc.links.size()) {
        invariant_report_.Report(
            "merge.cross_links",
            "cluster " + std::to_string(c) + " tracks " +
                std::to_string(sc.links.size()) + " partners but recount has " +
                std::to_string(expect.size()));
      }
      for (const auto& [other, count] : expect) {
        auto it = sc.links.find(other);
        if (it == sc.links.end() || it->second != count) {
          invariant_report_.Report(
              "merge.cross_links",
              "link[" + std::to_string(c) + ", " + std::to_string(other) +
                  "] = " +
                  (it == sc.links.end() ? std::string("missing")
                                        : std::to_string(it->second)) +
                  " but recount = " + std::to_string(count));
        }
      }

      // (d) Local heap: one entry per linked partner, priority equal to the
      // goodness recomputed from the counted cross-links.
      if (sc.local.size() != sc.links.size()) {
        invariant_report_.Report(
            "merge.local_heap",
            "cluster " + std::to_string(c) + " local heap has " +
                std::to_string(sc.local.size()) + " entries for " +
                std::to_string(sc.links.size()) + " links");
      }
      for (const auto& [other, count] : sc.links) {
        if (!sc.local.Contains(other)) {
          invariant_report_.Report(
              "merge.local_heap", "cluster " + std::to_string(c) +
                                      " local heap is missing partner " +
                                      std::to_string(other));
          continue;
        }
        const double expected_g = goodness_.Goodness(
            count, sc.members.size(), states_[other]->members.size());
        const double actual_g = sc.local.PriorityOf(other);
        if (std::abs(actual_g - expected_g) >
            1e-9 * (1.0 + std::abs(expected_g))) {
          invariant_report_.Report(
              "merge.goodness",
              "g(" + std::to_string(c) + ", " + std::to_string(other) +
                  ") = " + std::to_string(actual_g) + " but recompute = " +
                  std::to_string(expected_g));
        }
      }

      // (e) Global heap: every live cluster present, keyed by its local best.
      if (!global_.Contains(c)) {
        invariant_report_.Report(
            "merge.global_heap",
            "cluster " + std::to_string(c) + " missing from global heap");
        continue;
      }
      const double expected_best = LocalBest(c);
      const double actual_best = global_.PriorityOf(c);
      if (!(actual_best == expected_best) &&
          std::abs(actual_best - expected_best) >
              1e-9 * (1.0 + std::abs(expected_best))) {
        invariant_report_.Report(
            "merge.global_heap",
            "global priority of " + std::to_string(c) + " = " +
                std::to_string(actual_best) + " but local best = " +
                std::to_string(expected_best));
      }
    }
    if (global_.size() != num_live_) {
      invariant_report_.Report(
          "merge.global_heap",
          "global heap has " + std::to_string(global_.size()) +
              " entries for " + std::to_string(num_live_) +
              " live clusters");
    }
  }

  void BuildClustering(RockResult* result) {
    std::vector<ClusterIndex> assignment(graph_.size(), kUnassigned);
    ClusterIndex next = 0;
    for (ClusterId c = 0; c < next_id_; ++c) {
      if (states_[c] == nullptr) continue;
      for (PointIndex p : states_[c]->members) {
        assignment[p] = next;
      }
      ++next;
    }
    result->clustering = Clustering::FromAssignment(std::move(assignment));
    result->clustering.SortBySizeDescending();
  }

  const RockOptions& options_;
  GoodnessMeasure goodness_;
  const NeighborGraph& graph_;

  std::vector<std::unique_ptr<ClusterState>> states_;
  UpdatableHeap<ClusterId, double> global_;
  std::vector<PointIndex> pruned_;         // sorted by construction
  std::vector<PointIndex> weeded_points_;
  size_t num_live_ = 0;
  ClusterId next_id_ = 0;

  diag::MetricsRegistry* metrics_ = nullptr;  // null → metrics disabled
  diag::InvariantReport invariant_report_;
  size_t check_every_ = 0;  // 0 → invariant checks disabled
  uint64_t goodness_updates_ = 0;
};

}  // namespace

RockResult RunHashedMergeEngine(const NeighborGraph& graph,
                                const RockOptions& options) {
  HashedMergeEngine engine(graph, options);
  return engine.Run();
}

}  // namespace rock::internal
