#include "core/sweep.h"

#include <algorithm>

#include "common/timer.h"

namespace rock {

std::vector<double> ThetaGrid(double lo, double hi, size_t count) {
  std::vector<double> grid;
  if (count == 0) return grid;
  if (count == 1) {
    grid.push_back(lo);
    return grid;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) {
    grid.push_back(lo + step * static_cast<double>(i));
  }
  return grid;
}

Result<std::vector<SweepPoint>> SweepTheta(
    const PointSimilarity& sim, const RockOptions& options,
    const std::vector<double>& thetas) {
  std::vector<SweepPoint> out;
  out.reserve(thetas.size());
  for (double theta : thetas) {
    RockOptions opt = options;
    opt.theta = theta;
    Timer timer;
    RockClusterer clusterer(opt);
    auto result = clusterer.Cluster(sim);
    ROCK_RETURN_IF_ERROR(result.status());

    SweepPoint point;
    point.theta = theta;
    point.average_degree = result->stats.average_degree;
    point.num_clusters = result->clustering.num_clusters();
    point.num_outliers = result->clustering.num_outliers();
    for (const auto& members : result->clustering.clusters) {
      point.largest_cluster = std::max(point.largest_cluster, members.size());
    }
    point.criterion = result->stats.criterion_value;
    point.seconds = timer.ElapsedSeconds();
    out.push_back(point);
  }
  return out;
}

}  // namespace rock
