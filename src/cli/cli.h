// librock — cli/cli.h
//
// The implementation behind the `rock` command-line tool (tools/rock_cli).
// Lives in the library so the test suite can drive full command runs and
// inspect their output without spawning processes.
//
// Subcommands:
//   rock gen       --dataset=basket|votes|mushroom|funds --out=FILE …
//   rock cluster   --input=FILE --format=csv|basket [--algo=…] …
//   rock pipeline  --store=FILE --sample-size=N …
//   rock help [subcommand]

#ifndef ROCK_CLI_CLI_H_
#define ROCK_CLI_CLI_H_

#include <string>
#include <vector>

namespace rock {

/// Runs one CLI invocation. `args` excludes the program name. All console
/// output (stdout-style) is appended to *out; errors are also rendered
/// there. Returns the process exit code (0 = success).
int RunCli(const std::vector<std::string>& args, std::string* out);

}  // namespace rock

#endif  // ROCK_CLI_CLI_H_
