// librock — cli/cli.h
//
// The implementation behind the `rock` command-line tool (tools/rock_cli).
// Lives in the library so the test suite can drive full command runs and
// inspect their output without spawning processes.
//
// Subcommands:
//   rock gen       --dataset=basket|votes|mushroom|funds --out=FILE …
//   rock cluster   --input=FILE --format=csv|basket [--algo=…] …
//   rock pipeline  --store=FILE --sample-size=N …
//   rock build     --store=FILE --model=FILE …
//   rock serve     --model=FILE [--threads=N --max-batch=B --max-queue=Q]
//   rock query     --model=FILE item… | --from-store=F --assignments=OUT
//   rock help [subcommand]

#ifndef ROCK_CLI_CLI_H_
#define ROCK_CLI_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace rock {

/// Runs one CLI invocation. `args` excludes the program name. All console
/// output (stdout-style) is appended to *out; errors are also rendered
/// there. Returns the process exit code (0 = success).
///
/// `stream_in`/`stream_out` carry the `rock serve` line protocol (queries
/// in, answers out) so protocol traffic never mixes with *out. Commands
/// that need them fail with exit code 2 when they are null. The two-arg
/// overload passes null streams — fine for every other command.
int RunCli(const std::vector<std::string>& args, std::string* out,
           std::istream* stream_in, std::ostream* stream_out);
int RunCli(const std::vector<std::string>& args, std::string* out);

}  // namespace rock

#endif  // ROCK_CLI_CLI_H_
