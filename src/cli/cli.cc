#include "cli/cli.h"

#include <cstdio>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <sstream>

#include "baselines/binarize.h"
#include "baselines/centroid_hierarchical.h"
#include "baselines/kmeans.h"
#include "baselines/linkage_hierarchical.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/components.h"
#include "core/pipeline.h"
#include "core/sweep.h"
#include "core/rock.h"
#include "data/arff_reader.h"
#include "data/csv_reader.h"
#include "diag/metrics.h"
#include "data/disk_store.h"
#include "data/transforms.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/profiles.h"
#include "serve/model_handle.h"
#include "serve/reload.h"
#include "serve/server.h"
#include "serve/stream.h"
#include "util/failpoint.h"
#include "similarity/jaccard.h"
#include "similarity/minhash.h"
#include "synth/basket_generator.h"
#include "synth/fund_generator.h"
#include "synth/mushroom_generator.h"
#include "synth/votes_generator.h"
#include "util/flags.h"

namespace rock {

namespace {

/// printf-style append to the output string.
template <typename... Args>
void Emit(std::string* out, const char* fmt, Args... args) {
  char buf[4096];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  *out += buf;
}

void EmitStr(std::string* out, const std::string& s) { *out += s; }

// ---------------------------------------------------------------- loading --

/// A loaded input: either categorical records or transactions (one is
/// populated based on --format).
struct LoadedData {
  bool is_categorical = false;
  CategoricalDataset categorical;
  TransactionDataset transactions;

  size_t size() const {
    return is_categorical ? categorical.size() : transactions.size();
  }
  const LabelSet& labels() const {
    return is_categorical ? categorical.labels() : transactions.labels();
  }
};

/// Reads basket-format text: one transaction per line, whitespace-separated
/// item names; with label_first, the first token is the ground-truth label.
Result<TransactionDataset> ReadBasketFile(const std::string& path,
                                          bool label_first) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  TransactionDataset ds;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::istringstream tokens{std::string(trimmed)};
    std::vector<std::string> items;
    std::string token;
    while (tokens >> token) items.push_back(token);
    if (items.empty()) continue;
    if (label_first) {
      ds.labels().Append(items.front());
      items.erase(items.begin());
    }
    ds.AddTransaction(items);
  }
  return ds;
}

Result<LoadedData> LoadInput(const std::string& path,
                             const std::string& format, int64_t label_column,
                             bool label_first) {
  LoadedData data;
  if (format == "csv") {
    CsvOptions csv;
    csv.label_column = static_cast<int>(label_column);
    auto ds = ReadCsvFile(path, csv);
    ROCK_RETURN_IF_ERROR(ds.status());
    data.is_categorical = true;
    data.categorical = std::move(*ds);
    return data;
  }
  if (format == "arff") {
    auto ds = ReadArffFile(path, ArffOptions{});
    ROCK_RETURN_IF_ERROR(ds.status());
    data.is_categorical = true;
    data.categorical = std::move(*ds);
    return data;
  }
  if (format == "basket") {
    auto ds = ReadBasketFile(path, label_first);
    ROCK_RETURN_IF_ERROR(ds.status());
    data.transactions = std::move(*ds);
    return data;
  }
  if (format == "store") {
    auto ds = ReadStoreToDataset(path, nullptr);
    ROCK_RETURN_IF_ERROR(ds.status());
    data.transactions = std::move(*ds);
    return data;
  }
  return Status::InvalidArgument("unknown --format '" + format +
                                 "' (csv|arff|basket|store)");
}

// ----------------------------------------------------------------- output --

Status WriteAssignments(const std::string& path,
                        const std::vector<ClusterIndex>& assignment) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  out << "row,cluster\n";
  for (size_t i = 0; i < assignment.size(); ++i) {
    out << i << ',' << assignment[i] << '\n';
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Writes a machine-readable run summary: cluster sizes, per-class
/// compositions when labels exist, quality metrics.
Status WriteJsonSummary(const std::string& path,
                        const Clustering& clustering,
                        const LabelSet& labels) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  out << "{\n  \"num_clusters\": " << clustering.num_clusters()
      << ",\n  \"num_points\": " << clustering.assignment.size()
      << ",\n  \"num_outliers\": " << clustering.num_outliers()
      << ",\n  \"clusters\": [";
  for (size_t c = 0; c < clustering.num_clusters(); ++c) {
    out << (c == 0 ? "\n" : ",\n") << "    {\"id\": " << c
        << ", \"size\": " << clustering.clusters[c].size();
    if (!labels.empty()) {
      std::map<LabelId, size_t> counts;
      for (PointIndex p : clustering.clusters[c]) {
        if (labels.label(p) != kNoLabel) ++counts[labels.label(p)];
      }
      out << ", \"composition\": {";
      bool first = true;
      for (const auto& [l, n] : counts) {
        out << (first ? "" : ", ") << '"' << JsonEscape(labels.Name(l))
            << "\": " << n;
        first = false;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n  ]";
  if (!labels.empty()) {
    auto table = ContingencyTable::Build(clustering, labels);
    if (table.ok()) {
      const VMeasure v = ComputeVMeasure(*table);
      out << ",\n  \"purity\": " << Purity(*table)
          << ",\n  \"ari\": " << AdjustedRandIndex(*table)
          << ",\n  \"nmi\": " << NormalizedMutualInformation(*table)
          << ",\n  \"v_measure\": " << v.v;
    }
  }
  out << "\n}\n";
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

/// Writes the diag metrics report (see docs/OBSERVABILITY.md for schema).
Status WriteMetricsJson(const std::string& path,
                        const diag::RunMetrics& metrics,
                        std::string_view tool) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  out << metrics.ToJson(tool);
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

void EmitClusteringSummary(const Clustering& clustering,
                           const LabelSet& labels, std::string* out) {
  Emit(out, "clusters: %zu   points: %zu   outliers: %zu\n",
       clustering.num_clusters(), clustering.assignment.size(),
       clustering.num_outliers());
  for (size_t c = 0; c < clustering.num_clusters() && c < 30; ++c) {
    Emit(out, "  cluster %zu: %zu points", c, clustering.clusters[c].size());
    if (!labels.empty()) {
      std::map<LabelId, size_t> counts;
      for (PointIndex p : clustering.clusters[c]) {
        if (labels.label(p) != kNoLabel) ++counts[labels.label(p)];
      }
      EmitStr(out, "  {");
      bool first = true;
      for (const auto& [l, n] : counts) {
        Emit(out, "%s%s: %zu", first ? "" : ", ", labels.Name(l).c_str(), n);
        first = false;
      }
      EmitStr(out, "}");
    }
    EmitStr(out, "\n");
  }
  if (clustering.num_clusters() > 30) {
    Emit(out, "  … %zu more clusters\n", clustering.num_clusters() - 30);
  }
  if (!labels.empty()) {
    auto table = ContingencyTable::Build(clustering, labels);
    if (table.ok()) {
      Emit(out, "purity: %.4f   ARI: %.4f   NMI: %.4f\n", Purity(*table),
           AdjustedRandIndex(*table), NormalizedMutualInformation(*table));
    }
  }
}

// ------------------------------------------------------------ subcommands --

int CmdGen(const std::vector<std::string>& args, std::string* out,
           bool help_only) {
  std::string dataset = "basket";
  std::string out_path;
  std::string format = "auto";
  double scale = 1.0;
  int64_t seed = 42;

  FlagSet flags;
  flags.AddString("dataset", &dataset,
                  "which data set: basket | votes | mushroom | funds");
  flags.AddString("out", &out_path, "output file path");
  flags.AddString("format", &format,
                  "output format: auto | csv | store (basket only)");
  flags.AddDouble("scale", &scale, "size multiplier (basket/mushroom)");
  flags.AddInt("seed", &seed, "generator seed");
  if (help_only) {
    EmitStr(out, "rock gen — generate a synthetic data set\n" + flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (out_path.empty()) {
    EmitStr(out, "error: --out is required\n");
    return 2;
  }

  const auto useed = static_cast<uint64_t>(seed);
  if (dataset == "basket") {
    BasketGeneratorOptions opt;
    opt.seed = useed;
    if (scale != 1.0) {
      for (auto& s : opt.cluster_sizes) {
        s = static_cast<size_t>(static_cast<double>(s) * scale);
      }
      opt.num_outliers = static_cast<size_t>(
          static_cast<double>(opt.num_outliers) * scale);
    }
    auto ds = GenerateBasketData(opt);
    if (!ds.ok()) {
      EmitStr(out, "error: " + ds.status().ToString() + "\n");
      return 1;
    }
    if (Status s = WriteDatasetToStore(*ds, out_path); !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "wrote %zu transactions to %s (store format)\n", ds->size(),
         out_path.c_str());
    return 0;
  }

  // Categorical data sets → CSV with the label in column 0.
  CategoricalDataset ds;
  if (dataset == "votes") {
    VotesGeneratorOptions opt;
    opt.seed = useed;
    auto r = GenerateVotesData(opt);
    if (!r.ok()) {
      EmitStr(out, "error: " + r.status().ToString() + "\n");
      return 1;
    }
    ds = std::move(*r);
  } else if (dataset == "mushroom") {
    MushroomGeneratorOptions opt;
    opt.seed = useed;
    opt.size_scale = scale;
    auto r = GenerateMushroomData(opt);
    if (!r.ok()) {
      EmitStr(out, "error: " + r.status().ToString() + "\n");
      return 1;
    }
    ds = std::move(*r);
  } else if (dataset == "funds") {
    FundGeneratorOptions opt;
    opt.seed = useed;
    auto set = GenerateFundData(opt);
    if (!set.ok()) {
      EmitStr(out, "error: " + set.status().ToString() + "\n");
      return 1;
    }
    auto r = TimeSeriesToCategorical(*set);
    if (!r.ok()) {
      EmitStr(out, "error: " + r.status().ToString() + "\n");
      return 1;
    }
    ds = std::move(*r);
  } else {
    EmitStr(out, "error: unknown --dataset '" + dataset + "'\n");
    return 2;
  }

  std::ofstream file(out_path);
  if (!file) {
    EmitStr(out, "error: cannot create " + out_path + "\n");
    return 1;
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    const LabelId l = ds.labels().empty() ? kNoLabel : ds.labels().label(i);
    file << (l == kNoLabel ? "?" : ds.labels().Name(l));
    const Record& r = ds.record(i);
    for (size_t a = 0; a < r.size(); ++a) {
      file << ',';
      file << (r.IsMissing(a) ? "?" : ds.schema().ValueName(a, r.value(a)));
    }
    file << '\n';
  }
  Emit(out, "wrote %zu records to %s (csv format)\n", ds.size(),
       out_path.c_str());
  return 0;
}

int CmdCluster(const std::vector<std::string>& args, std::string* out,
               bool help_only) {
  std::string input;
  std::string format = "csv";
  std::string algo = "rock";
  std::string similarity = "jaccard";
  std::string assignments_path;
  std::string json_path;
  std::string metrics_json_path;
  double theta = 0.5;
  size_t k = 2;
  double stop_multiple = 0.0;
  size_t min_support = 2;
  size_t check_invariants = 0;
  int64_t label_column = 0;
  bool label_first = false;
  bool profiles = false;
  int64_t seed = 42;
  size_t threads = 1;
  size_t graph_threads = kGraphThreadsInherit;
  size_t row_chunk = 16;
  size_t lsh_bands = 0;
  size_t lsh_rows = 0;
  size_t lsh_seed = 0x5eed;
  std::string neighbors = "exact";
  std::string merge_engine = "parallel";
  size_t merge_threads = 1;
  std::string neighbor_engine = "packed";
  std::string link_engine = "packed";

  FlagSet flags;
  flags.AddString("input", &input, "input file");
  flags.AddString("format", &format, "csv | arff | basket | store");
  flags.AddString("algo", &algo,
                  "rock | centroid | single-link | group-average | kmeans");
  flags.AddString("similarity", &similarity,
                  "jaccard | pairwise-missing (csv inputs)");
  flags.AddString("assignments", &assignments_path,
                  "write row,cluster CSV here");
  flags.AddString("json", &json_path,
                  "write a machine-readable run summary (JSON) here");
  flags.AddString("metrics-json", &metrics_json_path,
                  "write the per-stage metrics report (JSON) here (rock)");
  flags.AddDouble("theta", &theta, "neighbor threshold θ (rock)");
  flags.AddSize("k", &k, "desired number of clusters");
  flags.AddDouble("stop-multiple", &stop_multiple,
                  "pause at stop-multiple×k clusters and weed small ones "
                  "(0 = off, rock)");
  flags.AddSize("min-support", &min_support,
                "minimum cluster size surviving weeding (rock)");
  flags.AddSize("check-invariants", &check_invariants,
                "validate merge bookkeeping every Nth merge (0 = off, rock)");
  flags.AddInt("label-column", &label_column,
               "ground-truth column in csv (-1 = none)");
  flags.AddBool("label-first", &label_first,
                "basket format: first token of each line is the label");
  flags.AddBool("profiles", &profiles,
                "print per-cluster frequent attribute values (csv inputs)");
  flags.AddInt("seed", &seed, "seed (kmeans)");
  flags.AddSize("threads", &threads,
                "worker threads for neighbors/links (0 = all cores, rock)");
  flags.AddSize("graph-threads", &graph_threads,
                "worker threads for just the neighbor/link phases "
                "(default: follow --threads; 0 = all cores, rock)");
  flags.AddSize("row-chunk", &row_chunk,
                "rows claimed per parallel scheduling step (rock, "
                "with --threads > 1)");
  flags.AddSize("lsh-bands", &lsh_bands,
                "LSH bands for --neighbor-engine=lsh|auto "
                "(0 = auto-tune from θ, rock)");
  flags.AddSize("lsh-rows", &lsh_rows,
                "LSH rows per band (0 = auto-tune from θ, rock)");
  flags.AddSize("lsh-seed", &lsh_seed, "LSH hash-family seed (rock)");
  flags.AddString("neighbors", &neighbors,
                  "exact | lsh (MinHash-accelerated; basket/store inputs, "
                  "rock only)");
  flags.AddString("merge-engine", &merge_engine,
                  "parallel | flat | hashed merge-engine layout (rock; "
                  "results are identical, parallel is fastest)");
  flags.AddSize("merge-threads", &merge_threads,
                "worker threads for the parallel merge engine's sharded "
                "relink (0 = all cores; results are identical, rock)");
  flags.AddString("neighbor-engine", &neighbor_engine,
                  "packed | scalar | lsh | auto neighbor-graph engine "
                  "(rock; packed/scalar are exact and identical, lsh is "
                  "precision-1 approximate, auto picks per dataset)");
  flags.AddString("link-engine", &link_engine,
                  "packed | hashed link-count engine (rock; link rows are "
                  "identical, packed is faster)");
  if (help_only) {
    EmitStr(out, "rock cluster — cluster a data file\n" + flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (input.empty()) {
    EmitStr(out, "error: --input is required\n");
    return 2;
  }

  auto loaded = LoadInput(input, format, label_column, label_first);
  if (!loaded.ok()) {
    EmitStr(out, "error: " + loaded.status().ToString() + "\n");
    return 1;
  }
  Emit(out, "loaded %zu %s from %s\n", loaded->size(),
       loaded->is_categorical ? "records" : "transactions", input.c_str());

  Timer timer;
  Clustering clustering;
  diag::RunMetrics run_metrics;
  bool have_metrics = false;
  if (algo == "rock" || algo == "single-link" || algo == "group-average") {
    // Similarity-driven algorithms.
    std::unique_ptr<PointSimilarity> sim;
    if (loaded->is_categorical) {
      if (similarity == "pairwise-missing") {
        sim = std::make_unique<PairwiseMissingJaccard>(loaded->categorical);
      } else {
        sim = std::make_unique<CategoricalJaccard>(loaded->categorical);
      }
    } else {
      sim = std::make_unique<TransactionJaccard>(loaded->transactions);
    }
    if (algo == "rock") {
      RockOptions opt;
      opt.theta = theta;
      opt.num_clusters = k;
      opt.outlier_stop_multiple = stop_multiple;
      opt.min_cluster_support = min_support;
      opt.num_threads = threads;
      opt.graph_threads = graph_threads;
      opt.row_chunk = row_chunk;
      opt.lsh_bands = lsh_bands;
      opt.lsh_rows = lsh_rows;
      opt.lsh_seed = lsh_seed;
      opt.diag.invariant_check_every = check_invariants;
      opt.merge_threads = merge_threads;
      if (merge_engine == "parallel") {
        opt.merge_engine = MergeEngineKind::kParallel;
      } else if (merge_engine == "flat") {
        opt.merge_engine = MergeEngineKind::kFlat;
      } else if (merge_engine == "hashed") {
        opt.merge_engine = MergeEngineKind::kHashed;
      } else {
        EmitStr(out, "error: unknown --merge-engine '" + merge_engine + "'\n");
        return 2;
      }
      if (neighbor_engine == "packed") {
        opt.neighbor_engine = NeighborEngineKind::kPacked;
      } else if (neighbor_engine == "scalar") {
        opt.neighbor_engine = NeighborEngineKind::kScalar;
      } else if (neighbor_engine == "lsh") {
        opt.neighbor_engine = NeighborEngineKind::kLsh;
      } else if (neighbor_engine == "auto") {
        opt.neighbor_engine = NeighborEngineKind::kAuto;
      } else {
        EmitStr(out, "error: unknown --neighbor-engine '" + neighbor_engine +
                         "'\n");
        return 2;
      }
      if (link_engine == "packed") {
        opt.link_engine = LinkEngineKind::kPacked;
      } else if (link_engine == "hashed") {
        opt.link_engine = LinkEngineKind::kHashed;
      } else {
        EmitStr(out, "error: unknown --link-engine '" + link_engine + "'\n");
        return 2;
      }
      Result<RockResult> result = Status::Internal("unreachable");
      if (neighbors == "lsh") {
        if (loaded->is_categorical) {
          EmitStr(out,
                  "error: --neighbors=lsh needs basket/store input\n");
          return 1;
        }
        auto graph = ComputeNeighborsLsh(loaded->transactions, theta);
        if (!graph.ok()) {
          EmitStr(out, "error: " + graph.status().ToString() + "\n");
          return 1;
        }
        result = RockClusterer(opt).ClusterGraph(*graph);
      } else if (neighbors == "exact") {
        result = RockClusterer(opt).Cluster(*sim);
      } else {
        EmitStr(out, "error: unknown --neighbors '" + neighbors + "'\n");
        return 2;
      }
      if (!result.ok()) {
        EmitStr(out, "error: " + result.status().ToString() + "\n");
        return 1;
      }
      clustering = std::move(result->clustering);
      run_metrics = std::move(result->metrics);
      have_metrics = true;
      Emit(out,
           "rock: θ=%.3f merges=%zu pruned=%zu weeded=%zu "
           "criterion=%.2f\n",
           theta, result->stats.num_merges, result->stats.num_pruned_points,
           result->stats.num_weeded_clusters,
           result->stats.criterion_value);
      const uint64_t violations =
          run_metrics.CounterOr("diag.invariant_violations");
      if (check_invariants > 0) {
        Emit(out, "diag: invariant checks=%llu violations=%llu\n",
             static_cast<unsigned long long>(
                 run_metrics.CounterOr("diag.invariant_checks")),
             static_cast<unsigned long long>(violations));
      }
      if (violations > 0) {
        EmitStr(out, "error: invariant violations detected (see stderr)\n");
        return 1;
      }
    } else if (algo == "single-link") {
      auto result = ClusterSingleLink(*sim, k);
      if (!result.ok()) {
        EmitStr(out, "error: " + result.status().ToString() + "\n");
        return 1;
      }
      clustering = std::move(*result);
    } else {
      auto result = ClusterGroupAverage(*sim, k);
      if (!result.ok()) {
        EmitStr(out, "error: " + result.status().ToString() + "\n");
        return 1;
      }
      clustering = std::move(*result);
    }
  } else if (algo == "centroid" || algo == "kmeans") {
    BinarizedData bin = loaded->is_categorical
                            ? BinarizeRecords(loaded->categorical)
                            : BinarizeTransactions(loaded->transactions);
    if (algo == "centroid") {
      CentroidHierarchicalOptions opt;
      opt.num_clusters = k;
      auto result = ClusterCentroidHierarchical(bin.points, opt);
      if (!result.ok()) {
        EmitStr(out, "error: " + result.status().ToString() + "\n");
        return 1;
      }
      clustering = std::move(result->clustering);
    } else {
      KMeansOptions opt;
      opt.num_clusters = k;
      opt.seed = static_cast<uint64_t>(seed);
      auto result = ClusterKMeans(bin.points, opt);
      if (!result.ok()) {
        EmitStr(out, "error: " + result.status().ToString() + "\n");
        return 1;
      }
      clustering = std::move(result->clustering);
      Emit(out, "kmeans: iterations=%zu converged=%s criterion E=%.2f\n",
           result->iterations, result->converged ? "yes" : "no",
           result->criterion);
    }
  } else {
    EmitStr(out, "error: unknown --algo '" + algo + "'\n");
    return 2;
  }
  Emit(out, "clustered in %.2fs\n", timer.ElapsedSeconds());
  EmitClusteringSummary(clustering, loaded->labels(), out);

  if (profiles && loaded->is_categorical) {
    ProfileOptions popt;
    popt.min_support = 0.5;
    for (const auto& p :
         ProfileClusters(loaded->categorical, clustering, popt)) {
      EmitStr(out, FormatProfile(p));
    }
  }
  if (!assignments_path.empty()) {
    if (Status s = WriteAssignments(assignments_path, clustering.assignment);
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "assignments written to %s\n", assignments_path.c_str());
  }
  if (!json_path.empty()) {
    if (Status s =
            WriteJsonSummary(json_path, clustering, loaded->labels());
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "summary written to %s\n", json_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    if (!have_metrics) {
      EmitStr(out, "error: --metrics-json requires --algo=rock\n");
      return 2;
    }
    if (Status s = WriteMetricsJson(metrics_json_path, run_metrics,
                                    "cluster");
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "metrics written to %s\n", metrics_json_path.c_str());
  }
  return 0;
}

// Sampling/clustering flags shared by `rock pipeline` and `rock build`.
// One definition keeps the two halves' defaults identical — the serve ≡
// pipeline differential only holds when both build the exact same model.
struct PipelineFlagValues {
  double theta = 0.5;
  size_t k = 10;
  size_t sample_size = 2000;
  double labeling_fraction = 0.25;
  double stop_multiple = 3.0;
  size_t min_support = 5;
  size_t check_invariants = 0;
  size_t threads = 1;
  size_t graph_threads = kGraphThreadsInherit;
  size_t row_chunk = 16;
  size_t label_threads = 1;
  size_t lsh_bands = 0;
  size_t lsh_rows = 0;
  size_t lsh_seed = 0x5eed;
  int64_t seed = 42;
  std::string failpoints;
  std::string merge_engine = "parallel";
  size_t merge_threads = 1;
  std::string neighbor_engine = "packed";
  std::string link_engine = "packed";
};

void RegisterPipelineFlags(FlagSet& flags, PipelineFlagValues* v) {
  flags.AddString("failpoints", &v->failpoints,
                  "deterministic fault-injection schedule, e.g. "
                  "'store.read=fire_on_hit_10:error' "
                  "(docs/ROBUSTNESS.md; debug builds only)");
  flags.AddSize("threads", &v->threads,
                "worker threads for the neighbor/link phases "
                "(0 = all cores; results are identical at any count)");
  flags.AddSize("graph-threads", &v->graph_threads,
                "worker threads for just the neighbor/link phases "
                "(default: follow --threads; 0 = all cores)");
  flags.AddSize("row-chunk", &v->row_chunk,
                "rows claimed per parallel scheduling step "
                "(with --threads > 1)");
  flags.AddSize("label-threads", &v->label_threads,
                "worker threads for the disk labeling phase "
                "(0 = all cores; assignments are identical at any count)");
  flags.AddSize("lsh-bands", &v->lsh_bands,
                "LSH bands for --neighbor-engine=lsh|auto "
                "(0 = auto-tune from θ)");
  flags.AddSize("lsh-rows", &v->lsh_rows,
                "LSH rows per band (0 = auto-tune from θ)");
  flags.AddSize("lsh-seed", &v->lsh_seed, "LSH hash-family seed");
  flags.AddString("neighbor-engine", &v->neighbor_engine,
                  "packed | scalar | lsh | auto neighbor-graph engine "
                  "(packed/scalar are exact and identical, lsh is "
                  "precision-1 approximate, auto picks per dataset)");
  flags.AddString("link-engine", &v->link_engine,
                  "packed | hashed link-count engine (link rows are "
                  "identical, packed is faster)");
  flags.AddString("merge-engine", &v->merge_engine,
                  "parallel | flat | hashed merge-engine layout (results "
                  "are identical, parallel is fastest)");
  flags.AddSize("merge-threads", &v->merge_threads,
                "worker threads for the parallel merge engine's sharded "
                "relink (0 = all cores; results are identical)");
  flags.AddSize("check-invariants", &v->check_invariants,
                "validate merge bookkeeping every Nth merge (0 = off)");
  flags.AddDouble("theta", &v->theta, "neighbor threshold θ");
  flags.AddSize("k", &v->k, "desired number of clusters");
  flags.AddSize("sample-size", &v->sample_size, "random sample size");
  flags.AddDouble("labeling-fraction", &v->labeling_fraction,
                  "fraction of each cluster used for labeling");
  flags.AddDouble("stop-multiple", &v->stop_multiple,
                  "outlier weeding pause multiple (0 = off)");
  flags.AddSize("min-support", &v->min_support,
                "weeding minimum cluster size");
  flags.AddInt("seed", &v->seed, "sampling seed");
}

/// Transfers parsed flag values into PipelineOptions. Returns 0, or exit
/// code 2 after rendering an error for an unknown engine name.
int ApplyPipelineFlags(const PipelineFlagValues& v, PipelineOptions* opt,
                       std::string* out) {
  opt->rock.theta = v.theta;
  opt->rock.num_clusters = v.k;
  opt->rock.outlier_stop_multiple = v.stop_multiple;
  opt->rock.min_cluster_support = v.min_support;
  opt->rock.diag.invariant_check_every = v.check_invariants;
  opt->rock.num_threads = v.threads;
  opt->rock.graph_threads = v.graph_threads;
  opt->rock.row_chunk = v.row_chunk;
  opt->rock.label_threads = v.label_threads;
  opt->rock.lsh_bands = v.lsh_bands;
  opt->rock.lsh_rows = v.lsh_rows;
  opt->rock.lsh_seed = v.lsh_seed;
  if (v.neighbor_engine == "packed") {
    opt->rock.neighbor_engine = NeighborEngineKind::kPacked;
  } else if (v.neighbor_engine == "scalar") {
    opt->rock.neighbor_engine = NeighborEngineKind::kScalar;
  } else if (v.neighbor_engine == "lsh") {
    opt->rock.neighbor_engine = NeighborEngineKind::kLsh;
  } else if (v.neighbor_engine == "auto") {
    opt->rock.neighbor_engine = NeighborEngineKind::kAuto;
  } else {
    EmitStr(out,
            "error: unknown --neighbor-engine '" + v.neighbor_engine + "'\n");
    return 2;
  }
  if (v.link_engine == "packed") {
    opt->rock.link_engine = LinkEngineKind::kPacked;
  } else if (v.link_engine == "hashed") {
    opt->rock.link_engine = LinkEngineKind::kHashed;
  } else {
    EmitStr(out, "error: unknown --link-engine '" + v.link_engine + "'\n");
    return 2;
  }
  opt->rock.merge_threads = v.merge_threads;
  if (v.merge_engine == "parallel") {
    opt->rock.merge_engine = MergeEngineKind::kParallel;
  } else if (v.merge_engine == "flat") {
    opt->rock.merge_engine = MergeEngineKind::kFlat;
  } else if (v.merge_engine == "hashed") {
    opt->rock.merge_engine = MergeEngineKind::kHashed;
  } else {
    EmitStr(out, "error: unknown --merge-engine '" + v.merge_engine + "'\n");
    return 2;
  }
  opt->sample_size = v.sample_size;
  opt->labeling.fraction = v.labeling_fraction;
  opt->seed = static_cast<uint64_t>(v.seed);
  opt->rock.failpoints = v.failpoints;
  return 0;
}

int CmdPipeline(const std::vector<std::string>& args, std::string* out,
                bool help_only) {
  std::string store;
  std::string assignments_path;
  std::string metrics_json_path;
  std::string checkpoint_path;
  bool resume = false;
  PipelineFlagValues v;

  FlagSet flags;
  flags.AddString("store", &store, "transaction store file (see `rock gen`)");
  flags.AddString("checkpoint", &checkpoint_path,
                  "persist labeling progress here after every shard; the "
                  "file is removed when the run completes");
  flags.AddBool("resume", &resume,
                "resume from --checkpoint if it matches this run (a "
                "missing or corrupt checkpoint restarts cleanly)");
  flags.AddString("assignments", &assignments_path,
                  "write row,cluster CSV here");
  flags.AddString("metrics-json", &metrics_json_path,
                  "write the per-stage metrics report (JSON) here");
  RegisterPipelineFlags(flags, &v);
  if (help_only) {
    EmitStr(out,
            "rock pipeline — disk-backed sample/cluster/label\n" +
                flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (store.empty()) {
    EmitStr(out, "error: --store is required\n");
    return 2;
  }
  if (resume && checkpoint_path.empty()) {
    EmitStr(out, "error: --resume requires --checkpoint\n");
    return 2;
  }

  PipelineOptions opt;
  if (int code = ApplyPipelineFlags(v, &opt, out); code != 0) {
    return code;
  }
  opt.checkpoint_path = checkpoint_path;
  opt.resume = resume;
  auto result = RunRockPipeline(store, opt);
  if (!result.ok()) {
    EmitStr(out, "error: " + result.status().ToString() + "\n");
    return 1;
  }
  Emit(out,
       "pipeline: sample=%zu clusters=%zu outliers=%zu "
       "(sample %.2fs, cluster %.2fs, label %.2fs)\n",
       result->sample_rows.size(),
       result->sample_result.clustering.num_clusters(),
       result->labeling.num_outliers, result->sample_seconds,
       result->cluster_seconds, result->label_seconds);
  if (result->resumed) {
    Emit(out,
         "resume: sample clustering restored from checkpoint, "
         "%zu of %zu label shards skipped\n",
         result->shards_skipped, result->labeling.shards);
  }
  {
    const auto& lab = result->labeling;
    const uint64_t candidates =
        lab.stats.clusters_scored + lab.stats.clusters_pruned;
    Emit(out,
         "labeling: %zu threads over %zu shards, %.0f tx/s, "
         "prune hit rate %.2f\n",
         lab.threads_used, lab.shards,
         lab.seconds > 0.0
             ? static_cast<double>(lab.assignments.size()) / lab.seconds
             : 0.0,
         candidates == 0
             ? 0.0
             : static_cast<double>(lab.stats.clusters_pruned) /
                   static_cast<double>(candidates));
  }

  std::map<ClusterIndex, size_t> sizes;
  for (ClusterIndex c : result->labeling.assignments) ++sizes[c];
  for (const auto& [c, n] : sizes) {
    if (c == kUnassigned) {
      Emit(out, "  outliers: %zu rows\n", n);
    } else {
      Emit(out, "  cluster %d: %zu rows\n", c, n);
    }
  }
  if (!assignments_path.empty()) {
    if (Status s =
            WriteAssignments(assignments_path, result->labeling.assignments);
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "assignments written to %s\n", assignments_path.c_str());
  }
  if (result->metrics.CounterOr("diag.invariant_violations") > 0) {
    EmitStr(out, "error: invariant violations detected (see stderr)\n");
    return 1;
  }
  if (!metrics_json_path.empty()) {
    if (Status s = WriteMetricsJson(metrics_json_path, result->metrics,
                                    "pipeline");
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "metrics written to %s\n", metrics_json_path.c_str());
  }
  return 0;
}


int CmdBuild(const std::vector<std::string>& args, std::string* out,
             bool help_only) {
  std::string store;
  std::string model_path;
  std::string metrics_json_path;
  PipelineFlagValues v;

  FlagSet flags;
  flags.AddString("store", &store, "transaction store file (see `rock gen`)");
  flags.AddString("model", &model_path,
                  "write the model bundle here (versioned + CRC'd; "
                  "see docs/DESIGN.md)");
  flags.AddString("metrics-json", &metrics_json_path,
                  "write the per-stage metrics report (JSON) here");
  RegisterPipelineFlags(flags, &v);
  if (help_only) {
    EmitStr(out,
            "rock build — sample + cluster a store into a servable model "
            "bundle\n" +
                flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (store.empty()) {
    EmitStr(out, "error: --store is required\n");
    return 2;
  }
  if (model_path.empty()) {
    EmitStr(out, "error: --model is required\n");
    return 2;
  }

  ModelBuildOptions opt;
  if (int code = ApplyPipelineFlags(v, &opt.pipeline, out); code != 0) {
    return code;
  }
  opt.model_path = model_path;
  auto result = BuildModel(store, opt);
  if (!result.ok()) {
    EmitStr(out, "error: " + result.status().ToString() + "\n");
    return 1;
  }
  size_t labeling_points = 0;
  for (const auto& set : result->bundle.labeling_sets) {
    labeling_points += set.size();
  }
  Emit(out,
       "build: sample=%zu clusters=%zu labeling-points=%zu "
       "(sample %.2fs, cluster %.2fs, build %.2fs)\n",
       result->sample_rows.size(), result->bundle.labeling_sets.size(),
       labeling_points, result->sample_seconds, result->cluster_seconds,
       result->build_seconds);
  Emit(out, "model written to %s\n", model_path.c_str());
  if (!metrics_json_path.empty()) {
    if (Status s =
            WriteMetricsJson(metrics_json_path, result->metrics, "build");
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "metrics written to %s\n", metrics_json_path.c_str());
  }
  return 0;
}

int CmdServe(const std::vector<std::string>& args, std::string* out,
             bool help_only, std::istream* stream_in,
             std::ostream* stream_out) {
  std::string model_path;
  std::string metrics_json_path;
  size_t threads = 1;
  size_t max_batch = 64;
  size_t max_queue = 4096;
  size_t reload_poll_ms = 0;

  FlagSet flags;
  flags.AddString("model", &model_path, "model bundle (see `rock build`)");
  flags.AddSize("threads", &threads,
                "labeling worker threads (0 = all cores)");
  flags.AddSize("max-batch", &max_batch,
                "most queries a worker coalesces per wake-up");
  flags.AddSize("max-queue", &max_queue,
                "admission bound: queries queued beyond this are rejected");
  flags.AddSize("reload-poll-ms", &reload_poll_ms,
                "re-read --model every N ms and hot-swap it when its "
                "fingerprint changes (0 = off; queries in flight finish on "
                "the model that admitted them)");
  flags.AddString("metrics-json", &metrics_json_path,
                  "write the serve.* metrics report (JSON) here on exit");
  if (help_only) {
    EmitStr(out,
            "rock serve — answer cluster-assignment queries over "
            "stdin/stdout\n"
            "one whitespace-separated item query per line; one decimal "
            "cluster index per answer (-1 = outlier); blank and '#' lines "
            "are skipped\n" +
                flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (model_path.empty()) {
    EmitStr(out, "error: --model is required\n");
    return 2;
  }
  if (stream_in == nullptr || stream_out == nullptr) {
    EmitStr(out, "error: serve needs an input/output stream\n");
    return 2;
  }

  auto model = ModelHandle::Load(model_path);
  if (!model.ok()) {
    EmitStr(out, "error: " + model.status().ToString() + "\n");
    return 1;
  }

  diag::MetricsRegistry registry;
  ServeOptions serve_options;
  serve_options.num_threads = threads;
  serve_options.max_batch = max_batch;
  serve_options.max_queue = max_queue;
  serve_options.metrics = &registry;
  if (reload_poll_ms == 0) {
    if (Status s = ServeLines(*model, serve_options, *stream_in, *stream_out);
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
  } else {
    SwappableModel swappable(
        std::make_shared<const ModelHandle>(std::move(*model)));
    ModelReloadPoller poller(&swappable,
                             ReloadOptions{model_path, reload_poll_ms});
    poller.Start();
    const Status s =
        ServeLines(swappable, serve_options, *stream_in, *stream_out);
    poller.Stop();
    poller.ExportMetrics(&registry);
    if (!s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
  }
  // Protocol answers went to the stream; keep *out clean so piping
  // `rock serve < queries > answers` yields answers only.
  if (!metrics_json_path.empty()) {
    if (Status s =
            WriteMetricsJson(metrics_json_path, registry.Snapshot(), "serve");
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
  }
  return 0;
}

int CmdQuery(const std::vector<std::string>& args, std::string* out,
             bool help_only) {
  std::string model_path;
  std::string from_store;
  std::string assignments_path;
  size_t threads = 1;
  size_t max_batch = 64;
  size_t max_queue = 4096;

  FlagSet flags;
  flags.AddString("model", &model_path, "model bundle (see `rock build`)");
  flags.AddString("from-store", &from_store,
                  "label every row of this store through the server and "
                  "write --assignments");
  flags.AddString("assignments", &assignments_path,
                  "write row,cluster CSV here (with --from-store; same "
                  "format as `rock pipeline --assignments`)");
  flags.AddSize("threads", &threads,
                "labeling worker threads (0 = all cores)");
  flags.AddSize("max-batch", &max_batch,
                "most queries a worker coalesces per wake-up");
  flags.AddSize("max-queue", &max_queue, "admission bound");
  if (help_only) {
    EmitStr(out,
            "rock query — one-shot cluster assignment from a model\n"
            "usage: rock query --model=M item1 item2 …   (one query)\n"
            "       rock query --model=M --from-store=S --assignments=F\n" +
                flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (model_path.empty()) {
    EmitStr(out, "error: --model is required\n");
    return 2;
  }

  auto model = ModelHandle::Load(model_path);
  if (!model.ok()) {
    EmitStr(out, "error: " + model.status().ToString() + "\n");
    return 1;
  }

  if (from_store.empty()) {
    // One-shot: the positional tokens are one query.
    if (flags.positional().empty()) {
      EmitStr(out, "error: give item tokens, or --from-store\n");
      return 2;
    }
    std::string line;
    for (const std::string& token : flags.positional()) {
      if (!line.empty()) line += ' ';
      line += token;
    }
    auto tx = model->ParseQuery(line);
    if (!tx.ok()) {
      EmitStr(out, "error: " + tx.status().ToString() + "\n");
      return 1;
    }
    const ClusterIndex cluster = model->labeler().Assign(*tx);
    Emit(out, "%d\n", cluster);
    return 0;
  }

  if (assignments_path.empty()) {
    EmitStr(out, "error: --from-store requires --assignments\n");
    return 2;
  }

  // Stream every store row through the server, preserving row order via
  // the future window — the CSV must be byte-identical to what
  // `rock pipeline --assignments` writes for the same store and model
  // parameters (the serve ≡ pipeline differential in tools/tier1.sh).
  auto reader = TransactionStoreReader::Open(from_store);
  if (!reader.ok()) {
    EmitStr(out, "error: " + reader.status().ToString() + "\n");
    return 1;
  }

  ServeOptions serve_options;
  serve_options.num_threads = threads;
  serve_options.max_batch = max_batch;
  serve_options.max_queue = max_queue;
  LabelServer server(&*model, serve_options);
  if (Status s = server.Start(); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n");
    return 1;
  }

  std::vector<ClusterIndex> assignments;
  assignments.reserve(static_cast<size_t>(reader->count()));
  std::deque<std::future<ClusterIndex>> window;
  const size_t high_water = std::max<size_t>(1, serve_options.max_queue);
  while (reader->Next()) {
    while (true) {
      auto future = server.Submit(reader->transaction());
      if (future.ok()) {
        window.push_back(std::move(*future));
        break;
      }
      if (window.empty()) {
        EmitStr(out, "error: " + future.status().ToString() + "\n");
        return 1;
      }
      assignments.push_back(window.front().get());
      window.pop_front();
    }
    while (window.size() > high_water) {
      assignments.push_back(window.front().get());
      window.pop_front();
    }
  }
  if (!reader->status().ok()) {
    EmitStr(out, "error: " + reader->status().ToString() + "\n");
    return 1;
  }
  while (!window.empty()) {
    assignments.push_back(window.front().get());
    window.pop_front();
  }
  server.Stop();

  if (Status s = WriteAssignments(assignments_path, assignments); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n");
    return 1;
  }
  const LabelServer::Stats stats = server.stats();
  Emit(out,
       "query: %zu rows served in %zu batches (fill %.1f), "
       "%llu outliers, %.0f qps\n",
       assignments.size(), static_cast<size_t>(stats.batches),
       stats.batch_fill, static_cast<unsigned long long>(stats.outliers),
       stats.qps);
  Emit(out, "assignments written to %s\n", assignments_path.c_str());
  return 0;
}

int CmdAppend(const std::vector<std::string>& args, std::string* out,
              bool help_only) {
  std::string store;
  std::string model_path;
  std::string input_path;
  std::string from_store;
  std::string assignments_path;
  std::string metrics_json_path;
  std::string checkpoint_path;
  bool resume = false;
  bool rebuild_on_drift = false;
  size_t drift_window = 256;
  size_t drift_min = 64;
  double drift_share = 0.25;
  double drift_neighbor = 0.5;
  PipelineFlagValues v;

  FlagSet flags;
  flags.AddString("store", &store,
                  "transaction store to append to (crash-safe; see "
                  "docs/DESIGN.md §11)");
  flags.AddString("model", &model_path,
                  "model bundle that labels the appended rows (and is "
                  "rebuilt on drift with --rebuild-on-drift)");
  flags.AddString("input", &input_path,
                  "append one query line per row from this file (tokens as "
                  "in `rock serve`: item names with a dictionary bundle, "
                  "numeric ids otherwise; blank and '#' lines skipped)");
  flags.AddString("from-store", &from_store,
                  "append every row of this store file (item ids must come "
                  "from the same dictionary as --store)");
  flags.AddString("assignments", &assignments_path,
                  "write row,cluster CSV for the appended rows here (rows "
                  "are absolute store indices, so the file is the tail of "
                  "a full `rock query --from-store` relabel)");
  flags.AddString("checkpoint", &checkpoint_path,
                  "crash-safe rebuilds: persist the rebuild's sample+cluster "
                  "phase here (with --rebuild-on-drift)");
  flags.AddBool("resume", &resume,
                "resume a crashed rebuild from --checkpoint");
  flags.AddBool("rebuild-on-drift", &rebuild_on_drift,
                "re-cluster the grown store and atomically swap the model "
                "bundle when drift trips");
  flags.AddSize("drift-window", &drift_window,
                "sliding window of labeled rows the drift detector compares "
                "against the model profile");
  flags.AddSize("drift-min", &drift_min,
                "no drift verdict before this many rows are in the window");
  flags.AddDouble("drift-share", &drift_share,
                  "trip when the cluster-share TV distance exceeds this");
  flags.AddDouble("drift-neighbor", &drift_neighbor,
                  "trip when the window's mean winning neighbor count drops "
                  "below this fraction of the profile's (0 = off)");
  flags.AddString("metrics-json", &metrics_json_path,
                  "write the stream.*/drift.* metrics report (JSON) here");
  RegisterPipelineFlags(flags, &v);
  if (help_only) {
    EmitStr(out,
            "rock append — append rows to a store and label them online\n"
            "usage: rock append --store=S --model=M item1 item2 …\n"
            "       rock append --store=S --model=M --input=queries.txt\n"
            "       rock append --store=S --model=M --from-store=NEW\n" +
                flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (store.empty() || model_path.empty()) {
    EmitStr(out, "error: --store and --model are required\n");
    return 2;
  }
  if (resume && checkpoint_path.empty()) {
    EmitStr(out, "error: --resume requires --checkpoint\n");
    return 2;
  }
  if (!v.failpoints.empty()) {
    if (Status s = fail::Configure(v.failpoints); !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 2;
    }
  }

  diag::MetricsRegistry registry;
  StreamOptions stream_options;
  if (int code = ApplyPipelineFlags(v, &stream_options.build.pipeline, out);
      code != 0) {
    return code;
  }
  stream_options.build.pipeline.checkpoint_path = checkpoint_path;
  stream_options.build.pipeline.resume = resume;
  stream_options.drift.window = drift_window;
  stream_options.drift.min_observations = drift_min;
  stream_options.drift.share_tolerance = drift_share;
  stream_options.drift.neighbor_ratio = drift_neighbor;
  stream_options.auto_rebuild = rebuild_on_drift;
  // The CLI process exits after the append, so the drift rebuild runs
  // inline — the command returns only once the swap is durable.
  stream_options.background_rebuild = false;
  stream_options.metrics = &registry;

  auto session = StreamingSession::Open(store, model_path, stream_options);
  if (!session.ok()) {
    EmitStr(out, "error: " + session.status().ToString() + "\n");
    return 1;
  }

  // Collect the rows to append. All three sources funnel into the same
  // transaction vector; ParseQuery keeps name-mode inputs aligned with the
  // model's dictionary (unknown items count toward |T| but never match).
  std::vector<Transaction> rows;
  std::vector<LabelId> labels;
  const std::shared_ptr<const ModelHandle> parse_model =
      (*session)->Acquire();
  if (!flags.positional().empty()) {
    std::string line;
    for (const std::string& token : flags.positional()) {
      if (!line.empty()) line += ' ';
      line += token;
    }
    auto tx = parse_model->ParseQuery(line);
    if (!tx.ok()) {
      EmitStr(out, "error: " + tx.status().ToString() + "\n");
      return 1;
    }
    rows.push_back(std::move(*tx));
    labels.push_back(kNoLabel);
  }
  if (!input_path.empty()) {
    std::ifstream in(input_path);
    if (!in) {
      EmitStr(out, "error: cannot open '" + input_path + "'\n");
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      auto tx = parse_model->ParseQuery(trimmed);
      if (!tx.ok()) {
        EmitStr(out, "error: " + tx.status().ToString() + "\n");
        return 1;
      }
      rows.push_back(std::move(*tx));
      labels.push_back(kNoLabel);
    }
  }
  if (!from_store.empty()) {
    auto reader = TransactionStoreReader::Open(from_store);
    if (!reader.ok()) {
      EmitStr(out, "error: " + reader.status().ToString() + "\n");
      return 1;
    }
    while (reader->Next()) {
      rows.push_back(reader->transaction());
      labels.push_back(reader->label());
    }
    if (!reader->status().ok()) {
      EmitStr(out, "error: " + reader->status().ToString() + "\n");
      return 1;
    }
  }
  if (rows.empty()) {
    EmitStr(out,
            "error: nothing to append (give item tokens, --input or "
            "--from-store)\n");
    return 2;
  }

  auto appended = (*session)->Append(rows, &labels);
  if (!appended.ok()) {
    EmitStr(out, "error: " + appended.status().ToString() + "\n");
    return 1;
  }

  size_t outliers = 0;
  for (const auto& oc : appended->outcomes) {
    if (oc.cluster == kUnassigned) ++outliers;
  }
  Emit(out,
       "append: +%zu rows (store %llu -> %llu, generation %llu), "
       "%zu outliers\n",
       rows.size(),
       static_cast<unsigned long long>(appended->store.base_count),
       static_cast<unsigned long long>(appended->store.new_count),
       static_cast<unsigned long long>(appended->store.generation), outliers);
  const DriftReport& drift = appended->drift;
  Emit(out, "drift: tv=%.3f neighbors=%.1f/%.1f window=%zu%s\n",
       drift.tv_distance, drift.window_mean_neighbors,
       drift.profile_mean_neighbors, drift.window_fill,
       drift.tripped ? "  ** TRIPPED **" : "");
  if (appended->rebuild_started) {
    if (Status s = (*session)->WaitForRebuild(); !s.ok()) {
      EmitStr(out, "error: rebuild failed: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "rebuild: model re-clustered and swapped (%llu rebuilds)\n",
         static_cast<unsigned long long>((*session)->rebuilds()));
  }

  if (!assignments_path.empty()) {
    std::ofstream csv(assignments_path);
    if (!csv) {
      EmitStr(out, "error: cannot create '" + assignments_path + "'\n");
      return 1;
    }
    csv << "row,cluster\n";
    for (size_t i = 0; i < appended->outcomes.size(); ++i) {
      csv << (appended->store.base_count + i) << ','
          << appended->outcomes[i].cluster << '\n';
    }
    if (!csv) {
      EmitStr(out, "error: write failure on '" + assignments_path + "'\n");
      return 1;
    }
    Emit(out, "assignments written to %s\n", assignments_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    if (Status s =
            WriteMetricsJson(metrics_json_path, registry.Snapshot(), "append");
        !s.ok()) {
      EmitStr(out, "error: " + s.ToString() + "\n");
      return 1;
    }
    Emit(out, "metrics written to %s\n", metrics_json_path.c_str());
  }
  return 0;
}

int CmdSweep(const std::vector<std::string>& args, std::string* out,
             bool help_only) {
  std::string input;
  std::string format = "csv";
  std::string similarity = "jaccard";
  double lo = 0.3;
  double hi = 0.9;
  size_t steps = 7;
  size_t k = 2;
  int64_t label_column = 0;
  bool label_first = false;

  FlagSet flags;
  flags.AddString("input", &input, "input file");
  flags.AddString("format", &format, "csv | arff | basket | store");
  flags.AddString("similarity", &similarity,
                  "jaccard | pairwise-missing (csv inputs)");
  flags.AddDouble("lo", &lo, "lowest theta");
  flags.AddDouble("hi", &hi, "highest theta");
  flags.AddSize("steps", &steps, "number of grid points");
  flags.AddSize("k", &k, "desired number of clusters per run");
  flags.AddInt("label-column", &label_column,
               "ground-truth column in csv (-1 = none)");
  flags.AddBool("label-first", &label_first,
                "basket format: first token of each line is the label");
  if (help_only) {
    EmitStr(out, "rock sweep — run ROCK across a theta grid\n" +
                     flags.Help());
    return 0;
  }
  if (Status s = flags.Parse(args); !s.ok()) {
    EmitStr(out, "error: " + s.ToString() + "\n" + flags.Help());
    return 2;
  }
  if (input.empty()) {
    EmitStr(out, "error: --input is required\n");
    return 2;
  }

  auto loaded = LoadInput(input, format, label_column, label_first);
  if (!loaded.ok()) {
    EmitStr(out, "error: " + loaded.status().ToString() + "\n");
    return 1;
  }
  std::unique_ptr<PointSimilarity> sim;
  if (loaded->is_categorical) {
    if (similarity == "pairwise-missing") {
      sim = std::make_unique<PairwiseMissingJaccard>(loaded->categorical);
    } else {
      sim = std::make_unique<CategoricalJaccard>(loaded->categorical);
    }
  } else {
    sim = std::make_unique<TransactionJaccard>(loaded->transactions);
  }

  RockOptions opt;
  opt.num_clusters = k;
  auto sweep = SweepTheta(*sim, opt, ThetaGrid(lo, hi, steps));
  if (!sweep.ok()) {
    EmitStr(out, "error: " + sweep.status().ToString() + "\n");
    return 1;
  }
  Emit(out, "%-8s %10s %10s %10s %10s %14s %8s\n", "theta", "avg.deg",
       "clusters", "outliers", "largest", "criterion", "sec");
  for (const SweepPoint& p : *sweep) {
    Emit(out, "%-8.3f %10.1f %10zu %10zu %10zu %14.2f %8.2f\n", p.theta,
         p.average_degree, p.num_clusters, p.num_outliers,
         p.largest_cluster, p.criterion, p.seconds);
  }
  return 0;
}

const char kUsage[] =
    "rock — ROCK clustering for categorical attributes (ICDE 1999)\n"
    "\n"
    "usage: rock <command> [flags]\n"
    "\n"
    "commands:\n"
    "  gen       generate a synthetic data set (basket/votes/mushroom/funds)\n"
    "  cluster   cluster a csv / basket / store file (rock or baselines)\n"
    "  pipeline  disk pipeline: sample -> cluster -> label a store file\n"
    "  build     sample + cluster a store into a servable model bundle\n"
    "  serve     answer cluster queries over stdin/stdout from a model\n"
    "  query     one-shot cluster assignment (or label a whole store)\n"
    "  append    append rows to a store, label them online, track drift\n"
    "  sweep     run ROCK across a theta grid and tabulate the outcomes\n"
    "  help      show this message\n"
    "\n"
    "run `rock <command> --help` for the command's flags\n";

}  // namespace

int RunCli(const std::vector<std::string>& args, std::string* out,
           std::istream* stream_in, std::ostream* stream_out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    EmitStr(out, kUsage);
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  const bool wants_help =
      !rest.empty() && (rest[0] == "--help" || rest[0] == "help");

  if (command == "gen") {
    return CmdGen(rest, out, wants_help);
  }
  if (command == "cluster") {
    return CmdCluster(rest, out, wants_help);
  }
  if (command == "pipeline") {
    return CmdPipeline(rest, out, wants_help);
  }
  if (command == "build") {
    return CmdBuild(rest, out, wants_help);
  }
  if (command == "serve") {
    return CmdServe(rest, out, wants_help, stream_in, stream_out);
  }
  if (command == "query") {
    return CmdQuery(rest, out, wants_help);
  }
  if (command == "append") {
    return CmdAppend(rest, out, wants_help);
  }
  if (command == "sweep") {
    return CmdSweep(rest, out, wants_help);
  }
  EmitStr(out, "error: unknown command '" + command + "'\n\n" + kUsage);
  return 2;
}

int RunCli(const std::vector<std::string>& args, std::string* out) {
  return RunCli(args, out, nullptr, nullptr);
}

}  // namespace rock
