#include "synth/fund_generator.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "common/random.h"

namespace rock {

Status FundGeneratorOptions::Validate() const {
  if (num_dates < 2) {
    return Status::InvalidArgument("num_dates must be >= 2");
  }
  if (!(group_fidelity >= 0.0 && group_fidelity <= 1.0) ||
      !(pair_fidelity >= 0.0 && pair_fidelity <= 1.0)) {
    return Status::InvalidArgument("fidelities must be in [0, 1]");
  }
  if (!(young_fund_fraction >= 0.0 && young_fund_fraction < 1.0)) {
    return Status::InvalidArgument("young_fund_fraction must be in [0, 1)");
  }
  if (p_up < 0.0 || p_down < 0.0 || p_up + p_down > 1.0) {
    return Status::InvalidArgument("invalid move distribution");
  }
  return Status::OK();
}

namespace {

/// Table 4's sixteen named clusters with their fund counts.
struct GroupSpec {
  const char* name;
  size_t count;
};

constexpr std::array<GroupSpec, 16> kGroups = {{
    {"Bonds 1", 4},
    {"Bonds 2", 10},
    {"Bonds 3", 24},
    {"Bonds 4", 15},
    {"Bonds 5", 5},
    {"Bonds 6", 3},
    {"Bonds 7", 26},
    {"Financial Service", 3},
    {"Precious Metals", 10},
    {"International 1", 4},
    {"International 2", 4},
    {"International 3", 6},
    {"Balanced", 5},
    {"Growth 1", 8},
    {"Growth 2", 107},
    {"Growth 3", 70},
}};

/// Daily direction: +1, −1 or 0.
int DrawDirection(double p_up, double p_down, Rng* rng) {
  const double u = rng->UniformDouble();
  if (u < p_up) return 1;
  if (u < p_up + p_down) return -1;
  return 0;
}

}  // namespace

Result<TimeSeriesSet> GenerateFundData(const FundGeneratorOptions& options) {
  ROCK_RETURN_IF_ERROR(options.Validate());
  Rng rng(options.seed);

  TimeSeriesSet out;
  out.num_dates = options.num_dates;

  // Latent factor per group/pair: one direction per day.
  auto make_factor = [&] {
    std::vector<int> f(options.num_dates - 1);
    for (int& d : f) d = DrawDirection(options.p_up, options.p_down, &rng);
    return f;
  };

  size_t fund_counter = 0;
  auto make_fund = [&](const std::string& group, const std::vector<int>* factor,
                       double fidelity) {
    TimeSeries ts;
    ts.name = "F" + std::to_string(fund_counter++);
    ts.group = group;
    ts.prices.assign(options.num_dates, std::nullopt);

    size_t inception = 0;
    if (rng.Bernoulli(options.young_fund_fraction)) {
      // Launched somewhere in the first ~70% of the axis.
      inception = 1 + static_cast<size_t>(rng.UniformUint64(
                          (options.num_dates * 7) / 10));
    }
    double price = 8.0 + 40.0 * rng.UniformDouble();
    ts.prices[inception] = price;
    for (size_t t = inception + 1; t < options.num_dates; ++t) {
      int dir;
      if (factor != nullptr && rng.Bernoulli(fidelity)) {
        dir = (*factor)[t - 1];
      } else {
        dir = DrawDirection(options.p_up, options.p_down, &rng);
      }
      if (dir != 0) {
        const double pct = 0.002 + 0.006 * rng.UniformDouble();
        price *= 1.0 + static_cast<double>(dir) * pct;
      }
      ts.prices[t] = price;
    }
    out.series.push_back(std::move(ts));
  };

  size_t budget = options.total_funds;
  // Pairs live near the two biggest groups (Growth 2 / Growth 3); their
  // shadow funds are charged against the host's Table 4 quota so group
  // counts stay exact.
  constexpr size_t kHostA = 14;  // Growth 2
  constexpr size_t kHostB = 15;  // Growth 3
  std::vector<size_t> shadow_quota(kGroups.size(), 0);
  const size_t pairs_a = (options.num_pairs + 1) / 2;
  const size_t pairs_b = options.num_pairs - pairs_a;
  shadow_quota[kHostA] =
      std::min(kGroups[kHostA].count, pairs_a * options.shadows_per_pair);
  shadow_quota[kHostB] =
      std::min(kGroups[kHostB].count, pairs_b * options.shadows_per_pair);

  std::vector<std::vector<int>> group_factors;
  group_factors.reserve(kGroups.size());
  for (size_t gi = 0; gi < kGroups.size(); ++gi) {
    group_factors.push_back(make_factor());
    const size_t regular = kGroups[gi].count - shadow_quota[gi];
    for (size_t i = 0; i < regular && budget > 0; ++i, --budget) {
      make_fund(kGroups[gi].name, &group_factors.back(),
                options.group_fidelity);
    }
  }

  for (size_t p = 0; p < options.num_pairs && budget >= 2; ++p) {
    const size_t host = (p < pairs_a) ? kHostA : kHostB;
    const std::vector<int>& host_factor = group_factors[host];
    // Pair factor: host factor diluted to pair_host_affinity.
    std::vector<int> pair_factor(options.num_dates - 1);
    for (size_t t = 0; t + 1 < options.num_dates; ++t) {
      pair_factor[t] = rng.Bernoulli(options.pair_host_affinity)
                           ? host_factor[t]
                           : DrawDirection(options.p_up, options.p_down, &rng);
    }
    const std::string label = "pair" + std::to_string(p);
    make_fund(label, &pair_factor, options.pair_fidelity);
    make_fund(label, &pair_factor, options.pair_fidelity);
    budget -= 2;
    // Shadow funds: neighbors of both twins and of the host group; they
    // carry the host group's label (they genuinely are host-group funds).
    // Each shadow tracks the pair factor on ~half its days and the host
    // factor on the rest — close to both sides at once.
    for (size_t s = 0; s < options.shadows_per_pair && budget > 0;
         ++s, --budget) {
      std::vector<int> shadow_factor(options.num_dates - 1);
      for (size_t t = 0; t + 1 < options.num_dates; ++t) {
        shadow_factor[t] = rng.Bernoulli(options.shadow_pair_mix)
                               ? pair_factor[t]
                               : host_factor[t];
      }
      // Fidelity 1: the day mixing already encodes the shadow's noise.
      make_fund(kGroups[host].name, &shadow_factor, 1.0);
    }
  }
  while (budget > 0) {
    make_fund("single", nullptr, 0.0);
    --budget;
  }

  return out;
}

}  // namespace rock
