#include "synth/votes_generator.h"

#include <array>
#include <string>

#include "common/random.h"

namespace rock {

Status VotesGeneratorOptions::Validate() const {
  if (num_republicans + num_democrats == 0) {
    return Status::InvalidArgument("need at least one record");
  }
  if (!(missing_rate >= 0.0 && missing_rate < 1.0)) {
    return Status::InvalidArgument("missing_rate must be in [0, 1)");
  }
  return Status::OK();
}

namespace {

/// One issue with P(vote = Yes) per party, transcribed from paper Table 7
/// (supports of the frequent value; "n" supports converted to Yes
/// probabilities). water-project-cost-sharing has no Democrat entry in
/// Table 7 — the real data splits it nearly evenly, so 0.5.
struct Issue {
  const char* name;
  double republican_yes;
  double democrat_yes;
};

constexpr std::array<Issue, 16> kIssues = {{
    {"handicapped-infants", 0.15, 0.65},
    {"water-project-cost-sharing", 0.51, 0.50},
    {"adoption-of-the-budget-resolution", 0.13, 0.94},
    {"physician-fee-freeze", 0.92, 0.04},
    {"el-salvador-aid", 0.99, 0.08},
    {"religious-groups-in-schools", 0.93, 0.33},
    {"anti-satellite-test-ban", 0.16, 0.89},
    {"aid-to-nicaraguan-contras", 0.10, 0.97},
    {"mx-missile", 0.07, 0.86},
    {"immigration", 0.51, 0.51},
    {"synfuels-corporation-cutback", 0.23, 0.44},
    {"education-spending", 0.86, 0.10},
    {"superfund-right-to-sue", 0.90, 0.21},
    {"crime", 0.98, 0.27},
    {"duty-free-exports", 0.11, 0.68},
    {"export-administration-act-south-africa", 0.55, 0.70},
}};

}  // namespace

Result<CategoricalDataset> GenerateVotesData(
    const VotesGeneratorOptions& options) {
  ROCK_RETURN_IF_ERROR(options.Validate());
  Rng rng(options.seed);

  std::vector<std::string> attr_names;
  attr_names.reserve(kIssues.size());
  for (const Issue& issue : kIssues) attr_names.emplace_back(issue.name);
  CategoricalDataset out{Schema(std::move(attr_names))};

  struct Row {
    std::vector<std::string> values;
    const char* label;
  };
  std::vector<Row> rows;
  rows.reserve(options.num_republicans + options.num_democrats);

  auto make_record = [&](bool republican) {
    Row row;
    row.label = republican ? "republican" : "democrat";
    row.values.reserve(kIssues.size());
    for (const Issue& issue : kIssues) {
      if (rng.Bernoulli(options.missing_rate)) {
        row.values.emplace_back("?");
        continue;
      }
      const double p_yes =
          republican ? issue.republican_yes : issue.democrat_yes;
      row.values.emplace_back(rng.Bernoulli(p_yes) ? "y" : "n");
    }
    return row;
  };

  for (size_t i = 0; i < options.num_republicans; ++i) {
    rows.push_back(make_record(true));
  }
  for (size_t i = 0; i < options.num_democrats; ++i) {
    rows.push_back(make_record(false));
  }
  rng.Shuffle(rows);

  for (const Row& row : rows) {
    ROCK_RETURN_IF_ERROR(out.AddRecord(row.values, "?"));
    out.labels().Append(row.label);
  }
  return out;
}

}  // namespace rock
