// librock — synth/mushroom_generator.h
//
// Surrogate for the UCI Mushroom data set (8124 records × 22 categorical
// attributes; 4208 edible / 3916 poisonous — paper Table 1). The latent
// structure mirrors what the paper's Table 3 exposed: 21 sub-populations of
// highly unequal size (8 … 1728), each pure edible or pure poisonous except
// one mixed group; attribute values overlap heavily across groups ("clusters
// are not well-separated"), while odor follows the paper's observed rule —
// edible ⇒ {none, anise, almond}, poisonous ⇒ {foul, fishy, spicy, pungent,
// creosote, musty}. See DESIGN.md's substitution table.

#ifndef ROCK_SYNTH_MUSHROOM_GENERATOR_H_
#define ROCK_SYNTH_MUSHROOM_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// Parameters of the mushroom surrogate.
struct MushroomGeneratorOptions {
  /// Multiplies every sub-population size (1.0 = paper-size 8124 records;
  /// tests use smaller scales). Sizes are rounded up to >= 1.
  double size_scale = 1.0;
  /// Number of non-odor attributes per group whose template admits several
  /// values; the rest are fixed to one value. The paper's Tables 8–9 show
  /// exactly this shape (most attributes at support 1.0, a handful at
  /// 0.5/0.33), and it is what makes same-group pairs agree on ≥ 20 of 22
  /// attributes — the requirement for Jaccard ≥ θ = 0.8.
  size_t num_multivalued_attributes = 4;
  /// Number of admitted values for each multi-valued attribute (2–4 in the
  /// paper's profiles).
  size_t values_per_multivalued = 2;
  /// Per-cell probability of a missing value ("very few" in the real set).
  double missing_rate = 0.003;
  uint64_t seed = 8124;

  Status Validate() const;
};

/// Generates the surrogate data set. Records carry labels "edible" /
/// "poisonous"; the latent sub-population of each record is available via
/// GenerateMushroomDataWithTruth for tests that check cluster recovery.
Result<CategoricalDataset> GenerateMushroomData(
    const MushroomGeneratorOptions& options);

/// As GenerateMushroomData, but labels records by latent sub-population
/// ("group0" … "group20") instead of edibility — used to verify that ROCK
/// recovers the latent structure itself.
Result<CategoricalDataset> GenerateMushroomDataWithTruth(
    const MushroomGeneratorOptions& options);

/// Number of latent sub-populations in the surrogate (21, per Table 3).
size_t MushroomNumGroups();

}  // namespace rock

#endif  // ROCK_SYNTH_MUSHROOM_GENERATOR_H_
