// librock — synth/fund_generator.h
//
// Surrogate for the MIT AI Lab US mutual-fund closing-price data set
// (795 funds × 548 business dates, Jan 4 1993 – Mar 3 1995 — paper
// Table 1/§5.1). ROCK consumes only the Up/Down/No direction transform and
// the missing-history semantics, so the surrogate generates exactly those
// statistics: group-correlated daily direction processes for the 16 named
// fund categories of Table 4, 24 near-identical "same portfolio manager"
// twin pairs, independent singleton funds (the data set's many outliers),
// and young funds whose history starts late (missing leading values). See
// DESIGN.md's substitution table.

#ifndef ROCK_SYNTH_FUND_GENERATOR_H_
#define ROCK_SYNTH_FUND_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/timeseries.h"

namespace rock {

/// Parameters of the fund surrogate (defaults = paper shape).
struct FundGeneratorOptions {
  size_t num_dates = 548;
  /// Probability a fund's daily move copies its group factor (vs random).
  /// 0.94 puts within-group pairwise-missing Jaccard at ≈ 0.86 — above the
  /// paper's θ = 0.8, which is the property Table 4 needs from the real
  /// data (two funds matching on ~93% of daily directions).
  double group_fidelity = 0.94;
  /// Fidelity inside a twin pair (the paper found pairs managed by the same
  /// person to track each other almost exactly); ≈ 0.96 similarity.
  double pair_fidelity = 0.985;
  /// Number of twin pairs (paper: "ROCK found 24 clusters of size 2").
  size_t num_pairs = 24;
  /// A twin pair needs *common neighbors* before ROCK can link and merge
  /// it, and those neighbors must belong to big clusters or they would be
  /// absorbed into the pair (the expected-link denominator of a big merge
  /// crushes the pair↔group goodness to ≈ 0.1, so the pair survives). The
  /// real market data supplied such neighbors for free — every fund
  /// correlates loosely with the broad market. The surrogate reproduces
  /// the structure explicitly: each pair's factor tracks a big host
  /// group's factor at `pair_host_affinity`, and `shadows_per_pair` host-
  /// group funds are mixed (`shadow_pair_mix` of the pair factor) so they
  /// are neighbors of both twins *and* of the whole host group.
  /// With the defaults: twin↔twin sim ≈ 0.96, shadow↔twin ≈ 0.90,
  /// shadow↔host ≈ 0.77 (≈10 host funds cross θ), twin↔host ≈ 0.71 < θ —
  /// so the twins' only neighbors are each other and their shadow, giving
  /// link(A, B) = 1, while the shadow dissolves early into the big host
  /// cluster whose expected-link denominator keeps the pair separate.
  double pair_host_affinity = 0.78;
  /// Fraction of days a shadow fund tracks the pair factor (vs host).
  double shadow_pair_mix = 0.7;
  size_t shadows_per_pair = 1;
  /// Independent singleton funds filling up to total_funds.
  size_t total_funds = 795;
  /// Fraction of funds launched after the start of the date axis, with all
  /// earlier values missing (paper: "a number of young mutual funds started
  /// after Jan 4, 1993").
  double young_fund_fraction = 0.25;
  /// Daily move distribution of the latent factors: P(up), P(down) — the
  /// remainder is "no change".
  double p_up = 0.42;
  double p_down = 0.42;
  uint64_t seed = 19930104;

  Status Validate() const;
};

/// Generates the surrogate price series. Fund groups (ground truth) follow
/// Table 4's 16 named clusters; twin-pair funds are labeled "pair<i>";
/// singleton funds are labeled "single".
Result<TimeSeriesSet> GenerateFundData(const FundGeneratorOptions& options);

}  // namespace rock

#endif  // ROCK_SYNTH_FUND_GENERATOR_H_
