#include "synth/mushroom_generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"

namespace rock {

Status MushroomGeneratorOptions::Validate() const {
  if (size_scale <= 0.0) {
    return Status::InvalidArgument("size_scale must be > 0");
  }
  if (values_per_multivalued < 2) {
    return Status::InvalidArgument("values_per_multivalued must be >= 2");
  }
  if (!(missing_rate >= 0.0 && missing_rate < 1.0)) {
    return Status::InvalidArgument("missing_rate must be in [0, 1)");
  }
  return Status::OK();
}

namespace {

struct AttributeSpec {
  const char* name;
  std::vector<const char*> values;
};

/// The 22 UCI mushroom attributes with their real domains. The odor domain
/// is split below into edible/poisonous halves.
const std::vector<AttributeSpec>& Attributes() {
  static const std::vector<AttributeSpec> kAttrs = {
      {"cap-shape", {"bell", "conical", "convex", "flat", "knobbed", "sunken"}},
      {"cap-surface", {"fibrous", "grooves", "scaly", "smooth"}},
      {"cap-color",
       {"brown", "buff", "cinnamon", "gray", "green", "pink", "purple", "red",
        "white", "yellow"}},
      {"bruises", {"bruises", "no"}},
      {"odor", {}},  // handled separately by edibility
      {"gill-attachment", {"attached", "free"}},
      {"gill-spacing", {"close", "crowded"}},
      {"gill-size", {"broad", "narrow"}},
      {"gill-color",
       {"black", "brown", "buff", "chocolate", "gray", "green", "orange",
        "pink", "purple", "red", "white", "yellow"}},
      {"stalk-shape", {"enlarging", "tapering"}},
      {"stalk-root", {"bulbous", "club", "equal", "rhizomorphs", "rooted"}},
      {"stalk-surface-above-ring", {"fibrous", "scaly", "silky", "smooth"}},
      {"stalk-surface-below-ring", {"fibrous", "scaly", "silky", "smooth"}},
      {"stalk-color-above-ring",
       {"brown", "buff", "cinnamon", "gray", "orange", "pink", "red", "white",
        "yellow"}},
      {"stalk-color-below-ring",
       {"brown", "buff", "cinnamon", "gray", "orange", "pink", "red", "white",
        "yellow"}},
      {"veil-type", {"partial"}},
      {"veil-color", {"brown", "orange", "white", "yellow"}},
      {"ring-number", {"none", "one", "two"}},
      {"ring-type", {"evanescent", "flaring", "large", "none", "pendant"}},
      {"spore-print-color",
       {"black", "brown", "buff", "chocolate", "green", "orange", "purple",
        "white", "yellow"}},
      {"population",
       {"abundant", "clustered", "numerous", "scattered", "several",
        "solitary"}},
      {"habitat",
       {"grasses", "leaves", "meadows", "paths", "urban", "waste", "woods"}},
  };
  return kAttrs;
}

constexpr size_t kOdorAttribute = 4;

const std::vector<const char*>& EdibleOdors() {
  static const std::vector<const char*> kOdors = {"none", "anise", "almond"};
  return kOdors;
}

const std::vector<const char*>& PoisonousOdors() {
  static const std::vector<const char*> kOdors = {"foul",    "fishy",
                                                  "spicy",   "pungent",
                                                  "creosote", "musty"};
  return kOdors;
}

/// Latent sub-populations: (edible, poisonous) record counts taken from the
/// paper's Table 3 ROCK clusters (cluster 15 was the one mixed cluster).
struct GroupSpec {
  size_t edible;
  size_t poisonous;
};

constexpr std::array<GroupSpec, 21> kGroups = {{
    {96, 0},  {0, 256},  {704, 0}, {96, 0},  {768, 0},  {0, 192}, {1728, 0},
    {0, 32},  {0, 1296}, {0, 8},   {48, 0},  {48, 0},   {0, 288}, {192, 0},
    {32, 72}, {0, 1728}, {288, 0}, {0, 8},   {192, 0},  {16, 0},  {0, 36},
}};

/// One group's template: per (non-odor) attribute, the admitted value ids
/// and their cumulative weights; plus per-edibility odor subsets.
struct GroupTemplate {
  std::vector<std::vector<size_t>> values;   // per attribute
  std::vector<std::vector<double>> weights;  // parallel, cumulative in [0,1]
  std::vector<size_t> edible_odors;          // indices into EdibleOdors()
  std::vector<size_t> poison_odors;          // indices into PoisonousOdors()
};

std::vector<size_t> PickSubset(size_t domain, size_t max_values, Rng* rng) {
  const size_t nv = 1 + static_cast<size_t>(rng->UniformUint64(
                            std::min(max_values, domain)));
  std::vector<size_t> picked = rng->SampleWithoutReplacement(domain, nv);
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<double> CumulativeWeights(size_t n, Rng* rng) {
  std::vector<double> w(n);
  double total = 0.0;
  for (double& x : w) {
    x = 0.25 + rng->UniformDouble();  // floor keeps every value observable
    total += x;
  }
  double acc = 0.0;
  for (double& x : w) {
    acc += x / total;
    x = acc;
  }
  w.back() = 1.0;
  return w;
}

size_t DrawWeighted(const std::vector<size_t>& values,
                    const std::vector<double>& cumulative, Rng* rng) {
  const double u = rng->UniformDouble();
  for (size_t i = 0; i < cumulative.size(); ++i) {
    if (u <= cumulative[i]) return values[i];
  }
  return values.back();
}

GroupTemplate MakeTemplate(const MushroomGeneratorOptions& options,
                           Rng* rng) {
  const auto& attrs = Attributes();
  GroupTemplate t;
  t.values.resize(attrs.size());
  t.weights.resize(attrs.size());

  // Choose which non-odor attributes vary within this group; everything
  // else is pinned to one value (Tables 8–9 shape: most attributes at
  // support 1.0, a handful at 0.5).
  std::vector<size_t> non_odor;
  for (size_t a = 0; a < attrs.size(); ++a) {
    if (a != kOdorAttribute && attrs[a].values.size() > 1) {
      non_odor.push_back(a);
    }
  }
  const size_t num_multi =
      std::min(options.num_multivalued_attributes, non_odor.size());
  std::vector<size_t> multi_picks =
      rng->SampleWithoutReplacement(non_odor.size(), num_multi);
  std::vector<bool> is_multi(attrs.size(), false);
  for (size_t idx : multi_picks) is_multi[non_odor[idx]] = true;

  for (size_t a = 0; a < attrs.size(); ++a) {
    if (a == kOdorAttribute) continue;
    const size_t domain = attrs[a].values.size();
    if (is_multi[a]) {
      const size_t nv = std::min(options.values_per_multivalued, domain);
      t.values[a] = rng->SampleWithoutReplacement(domain, nv);
      std::sort(t.values[a].begin(), t.values[a].end());
    } else {
      t.values[a] = {static_cast<size_t>(rng->UniformUint64(domain))};
    }
    t.weights[a] = CumulativeWeights(t.values[a].size(), rng);
  }
  // Odor: one or two admitted odors per edibility within a group (the real
  // data's groups are near-deterministic in odor).
  t.edible_odors = PickSubset(EdibleOdors().size(), 2, rng);
  t.poison_odors = PickSubset(PoisonousOdors().size(), 2, rng);
  return t;
}

Result<CategoricalDataset> Generate(const MushroomGeneratorOptions& options,
                                    bool truth_labels) {
  ROCK_RETURN_IF_ERROR(options.Validate());
  Rng rng(options.seed);
  const auto& attrs = Attributes();

  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (const auto& a : attrs) names.emplace_back(a.name);
  CategoricalDataset out{Schema(std::move(names))};

  std::vector<GroupTemplate> templates;
  templates.reserve(kGroups.size());
  for (size_t g = 0; g < kGroups.size(); ++g) {
    templates.push_back(MakeTemplate(options, &rng));
  }

  auto scaled = [&](size_t n) {
    if (n == 0) return size_t{0};
    return std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               options.size_scale * static_cast<double>(n))));
  };

  struct Row {
    std::vector<std::string> values;
    std::string label;
  };
  std::vector<Row> rows;

  for (size_t g = 0; g < kGroups.size(); ++g) {
    const GroupTemplate& t = templates[g];
    const size_t n_edible = scaled(kGroups[g].edible);
    const size_t n_poison = scaled(kGroups[g].poisonous);
    for (size_t r = 0; r < n_edible + n_poison; ++r) {
      const bool edible = r < n_edible;
      Row row;
      row.label = truth_labels ? "group" + std::to_string(g)
                               : (edible ? "edible" : "poisonous");
      row.values.reserve(attrs.size());
      for (size_t a = 0; a < attrs.size(); ++a) {
        if (options.missing_rate > 0.0 &&
            rng.Bernoulli(options.missing_rate)) {
          row.values.emplace_back("?");
          continue;
        }
        if (a == kOdorAttribute) {
          const auto& odor_ids = edible ? t.edible_odors : t.poison_odors;
          const auto& odor_names =
              edible ? EdibleOdors() : PoisonousOdors();
          const size_t pick = odor_ids[static_cast<size_t>(
              rng.UniformUint64(odor_ids.size()))];
          row.values.emplace_back(odor_names[pick]);
        } else {
          const size_t v = DrawWeighted(t.values[a], t.weights[a], &rng);
          row.values.emplace_back(attrs[a].values[v]);
        }
      }
      rows.push_back(std::move(row));
    }
  }
  rng.Shuffle(rows);

  for (const Row& row : rows) {
    ROCK_RETURN_IF_ERROR(out.AddRecord(row.values, "?"));
    out.labels().Append(row.label);
  }
  return out;
}

}  // namespace

Result<CategoricalDataset> GenerateMushroomData(
    const MushroomGeneratorOptions& options) {
  return Generate(options, /*truth_labels=*/false);
}

Result<CategoricalDataset> GenerateMushroomDataWithTruth(
    const MushroomGeneratorOptions& options) {
  return Generate(options, /*truth_labels=*/true);
}

size_t MushroomNumGroups() { return kGroups.size(); }

}  // namespace rock
