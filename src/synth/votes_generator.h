// librock — synth/votes_generator.h
//
// Surrogate for the UCI 1984 Congressional Voting Records data set
// (435 records × 16 boolean issues; 168 Republicans, 267 Democrats; "very
// few" missing values — paper Table 1). The per-issue, per-party Yes
// probabilities are taken from the paper's own Table 7 cluster profiles, so
// a sample from this generator carries exactly the distributional signal
// ROCK exploited on the real data: 3 issues where the parties agree, 12–13
// where they split, with the reported supports. See DESIGN.md's
// substitution table.

#ifndef ROCK_SYNTH_VOTES_GENERATOR_H_
#define ROCK_SYNTH_VOTES_GENERATOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// Parameters of the votes surrogate (defaults = UCI/paper shape).
struct VotesGeneratorOptions {
  size_t num_republicans = 168;
  size_t num_democrats = 267;
  /// Per-cell probability of a missing value ("very few" in the real set).
  double missing_rate = 0.015;
  uint64_t seed = 1984;

  Status Validate() const;
};

/// Generates the surrogate data set. Records carry labels "republican" /
/// "democrat"; attributes are the 16 issue names of Table 7; values are
/// "y" / "n" with '?'-style missing cells at missing_rate. Rows are
/// shuffled.
Result<CategoricalDataset> GenerateVotesData(
    const VotesGeneratorOptions& options);

}  // namespace rock

#endif  // ROCK_SYNTH_VOTES_GENERATOR_H_
