// librock — synth/basket_generator.h
//
// Synthetic market-basket generator reproducing the paper's §5.3 data set:
// 114,586 transactions, 10 clusters of 5,411–14,832 transactions each
// defined by 19–22 items, ~40% of a cluster's defining items shared with
// other clusters, transaction sizes ~ Normal(15, σ) with 98% of sizes in
// [11, 19] (σ = 2 puts ±2σ at exactly that window), plus ~5% outliers drawn
// from the union of all cluster items.

#ifndef ROCK_SYNTH_BASKET_GENERATOR_H_
#define ROCK_SYNTH_BASKET_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rock {

/// Parameters for the synthetic basket database (defaults = paper Table 5).
struct BasketGeneratorOptions {
  /// Transactions per cluster (defines the number of clusters).
  std::vector<size_t> cluster_sizes = {9736,  13029, 14832, 10893, 13022,
                                       7391,  8564,  11973, 14279, 5411};
  /// Number of defining items per cluster (parallel to cluster_sizes).
  std::vector<size_t> items_per_cluster = {19, 20, 19, 19, 22,
                                           19, 19, 21, 22, 19};
  /// Fraction of each cluster's defining items drawn from a pool shared
  /// with other clusters ("Roughly 40% … are common with items for other
  /// clusters, the remaining 60% being exclusive").
  double shared_item_fraction = 0.4;
  /// Outlier transactions, drawn over the union of all defining items.
  size_t num_outliers = 5456;
  /// Transaction-size distribution (normal, clamped to >= min_tx_size).
  double mean_tx_size = 15.0;
  double stddev_tx_size = 2.0;
  size_t min_tx_size = 1;
  /// RNG seed; equal seeds give identical databases.
  uint64_t seed = 20260707;
  /// Ground-truth label used for outlier transactions.
  std::string outlier_label = "outlier";

  Status Validate() const;
};

/// Generates the transaction database. Transactions carry ground-truth
/// labels "cluster0" … "cluster9" / outlier_label for evaluation. Row order
/// is shuffled so clusters are interleaved like a real feed.
Result<TransactionDataset> GenerateBasketData(
    const BasketGeneratorOptions& options);

}  // namespace rock

#endif  // ROCK_SYNTH_BASKET_GENERATOR_H_
