#include "synth/basket_generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace rock {

Status BasketGeneratorOptions::Validate() const {
  if (cluster_sizes.empty()) {
    return Status::InvalidArgument("need at least one cluster");
  }
  if (cluster_sizes.size() != items_per_cluster.size()) {
    return Status::InvalidArgument(
        "cluster_sizes and items_per_cluster must be parallel");
  }
  for (size_t m : items_per_cluster) {
    if (m == 0) return Status::InvalidArgument("clusters need >= 1 item");
  }
  if (!(shared_item_fraction >= 0.0 && shared_item_fraction <= 1.0)) {
    return Status::InvalidArgument("shared_item_fraction must be in [0, 1]");
  }
  if (mean_tx_size <= 0.0 || stddev_tx_size < 0.0) {
    return Status::InvalidArgument("invalid transaction-size distribution");
  }
  if (min_tx_size == 0) {
    return Status::InvalidArgument("min_tx_size must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Draws a clamped-normal transaction size in [min_size, max_size].
size_t DrawTxSize(const BasketGeneratorOptions& options, size_t max_size,
                  Rng* rng) {
  const double raw =
      rng->Normal(options.mean_tx_size, options.stddev_tx_size);
  auto t = static_cast<int64_t>(std::llround(raw));
  t = std::max<int64_t>(t, static_cast<int64_t>(options.min_tx_size));
  t = std::min<int64_t>(t, static_cast<int64_t>(max_size));
  return static_cast<size_t>(t);
}

}  // namespace

Result<TransactionDataset> GenerateBasketData(
    const BasketGeneratorOptions& options) {
  ROCK_RETURN_IF_ERROR(options.Validate());
  Rng rng(options.seed);
  const size_t k = options.cluster_sizes.size();

  // Build defining item sets. Shared items come from a pool sized so each
  // pool item is used by ~2 clusters; the rest are exclusive to a cluster.
  size_t total_shared = 0;
  std::vector<size_t> shared_per_cluster(k);
  for (size_t c = 0; c < k; ++c) {
    shared_per_cluster[c] = static_cast<size_t>(std::llround(
        options.shared_item_fraction *
        static_cast<double>(options.items_per_cluster[c])));
    // A cluster cannot share more items than it has.
    shared_per_cluster[c] =
        std::min(shared_per_cluster[c], options.items_per_cluster[c]);
    total_shared += shared_per_cluster[c];
  }
  const size_t pool_size = std::max<size_t>(1, (total_shared + 1) / 2);

  ItemId next_item = 0;
  std::vector<ItemId> pool(pool_size);
  for (auto& item : pool) item = next_item++;

  std::vector<std::vector<ItemId>> defining(k);
  for (size_t c = 0; c < k; ++c) {
    auto& items = defining[c];
    const size_t want_shared =
        std::min(shared_per_cluster[c], pool.size());
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(pool.size(), want_shared);
    for (size_t idx : picks) items.push_back(pool[idx]);
    const size_t exclusive = options.items_per_cluster[c] - want_shared;
    for (size_t e = 0; e < exclusive; ++e) items.push_back(next_item++);
  }

  std::vector<ItemId> all_items;
  for (const auto& items : defining) {
    all_items.insert(all_items.end(), items.begin(), items.end());
  }
  std::sort(all_items.begin(), all_items.end());
  all_items.erase(std::unique(all_items.begin(), all_items.end()),
                  all_items.end());

  // Generate rows: cluster transactions then outliers, then shuffle.
  struct Row {
    Transaction tx;
    std::string label;
  };
  std::vector<Row> rows;
  size_t total_rows = options.num_outliers;
  for (size_t s : options.cluster_sizes) total_rows += s;
  rows.reserve(total_rows);

  for (size_t c = 0; c < k; ++c) {
    const auto& items = defining[c];
    const std::string label = "cluster" + std::to_string(c);
    for (size_t t = 0; t < options.cluster_sizes[c]; ++t) {
      const size_t size = DrawTxSize(options, items.size(), &rng);
      std::vector<size_t> picks =
          rng.SampleWithoutReplacement(items.size(), size);
      std::vector<ItemId> tx_items;
      tx_items.reserve(size);
      for (size_t idx : picks) tx_items.push_back(items[idx]);
      rows.push_back(Row{Transaction(std::move(tx_items)), label});
    }
  }
  for (size_t o = 0; o < options.num_outliers; ++o) {
    const size_t size = DrawTxSize(options, all_items.size(), &rng);
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(all_items.size(), size);
    std::vector<ItemId> tx_items;
    tx_items.reserve(size);
    for (size_t idx : picks) tx_items.push_back(all_items[idx]);
    rows.push_back(Row{Transaction(std::move(tx_items)),
                       options.outlier_label});
  }
  rng.Shuffle(rows);

  TransactionDataset out;
  // Intern item names up front so ids in transactions match the dictionary.
  for (ItemId item = 0; item < next_item; ++item) {
    out.items().Intern("i" + std::to_string(item));
  }
  for (auto& row : rows) {
    out.AddTransaction(std::move(row.tx));
    out.labels().Append(row.label);
  }
  return out;
}

}  // namespace rock
