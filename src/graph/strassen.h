// librock — graph/strassen.h
//
// Strassen's O(n^2.81) matrix multiplication [CLR90], referenced by paper
// §4.4 as the sub-cubic route to link counts via adjacency-matrix squaring.
// Implemented with power-of-two zero padding and a naive-product cutoff for
// small blocks (Strassen's constant factors lose below the cutoff).

#ifndef ROCK_GRAPH_STRASSEN_H_
#define ROCK_GRAPH_STRASSEN_H_

#include "graph/dense_matrix.h"

namespace rock {

/// Options for the Strassen product.
struct StrassenOptions {
  /// Blocks at or below this dimension multiply naively.
  size_t cutoff = 64;
};

/// Strassen product of two square matrices of equal dimension.
/// Fails on dimension mismatch or non-square inputs.
Result<DenseMatrix> StrassenMultiply(const DenseMatrix& a,
                                     const DenseMatrix& b,
                                     const StrassenOptions& options = {});

/// Computes links by Strassen-squaring the adjacency matrix; matches
/// ComputeLinks exactly.
LinkMatrix ComputeLinksStrassen(const NeighborGraph& graph,
                                const StrassenOptions& options = {});

}  // namespace rock

#endif  // ROCK_GRAPH_STRASSEN_H_
