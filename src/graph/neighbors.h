// librock — graph/neighbors.h
//
// Neighbor-graph construction (paper §3.1): points i, j are *neighbors* iff
// sim(i, j) >= θ. A point is NOT its own neighbor — the paper's worked link
// counts (Example 1.2 / §3.2: pairs {1,2,3},{1,2,4} share exactly 5 common
// neighbors) only hold when self and the two endpoints are excluded.

#ifndef ROCK_GRAPH_NEIGHBORS_H_
#define ROCK_GRAPH_NEIGHBORS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "similarity/similarity.h"

namespace rock {

/// Dense point index inside one clustering run.
using PointIndex = uint32_t;

/// Thresholded neighbor graph: nbrlist[i] is the sorted list of j != i with
/// sim(i, j) >= θ.
struct NeighborGraph {
  std::vector<std::vector<PointIndex>> nbrlist;

  /// Number of points n.
  size_t size() const { return nbrlist.size(); }

  /// Degree of point i (m_i in the paper's complexity analysis).
  size_t Degree(size_t i) const { return nbrlist[i].size(); }

  /// True iff i and j are neighbors (binary search; i != j expected).
  bool AreNeighbors(PointIndex i, PointIndex j) const;

  /// Average neighbor count m_a.
  double AverageDegree() const;

  /// Maximum neighbor count m_m.
  size_t MaxDegree() const;

  /// Number of (unordered) neighbor pairs, i.e. edges.
  size_t NumEdges() const;
};

/// Builds the neighbor graph by thresholding all pairwise similarities.
/// θ must be in [0, 1]. O(n²) similarity evaluations.
Result<NeighborGraph> ComputeNeighbors(const PointSimilarity& sim,
                                       double theta);

/// Builds the neighbor graph for an explicit subset of points: entry i of
/// the result refers to subset position i, and similarities are evaluated
/// between subset[i] and subset[j]. Used after sampling/outlier pruning.
Result<NeighborGraph> ComputeNeighborsForSubset(
    const PointSimilarity& sim, const std::vector<size_t>& subset,
    double theta);

}  // namespace rock

#endif  // ROCK_GRAPH_NEIGHBORS_H_
