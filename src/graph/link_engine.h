// librock — graph/link_engine.h
//
// Bit-plane link engine. The paper's Fig. 4 scatter pays one memory update
// per length-2 neighbor path — O(Σ mᵢ²) scalar increments. This engine
// instead packs every point's *neighbor row* N(p) into a plane of 64-bit
// words (one bit per point, the same plane layout as similarity/packed.h)
// and computes
//
//     link(p, q) = |N(p) ∩ N(q)| = popcount(row_p AND row_q)
//
// with the runtime-dispatched AVX2 nibble-LUT popcount kernel
// (similarity/packed.h IntersectPopcount). Sparsity is still exploited:
// candidates for row p are enumerated as the bitwise OR of its neighbors'
// rows — exactly the points sharing at least one neighbor with p, i.e.
// exactly the pairs with link > 0 — so no popcount sweep is ever wasted on
// a zero pair.
//
// Every row's candidate set and counts depend only on the input graph, and
// the mirror/CSR assembly pass is serial and index-ordered, so the frozen
// CSR rows are byte-identical to LinkMatrix::Freeze() of the Fig. 4 hashed
// oracle at any thread count (enforced by tests/link_engine_test.cc).
//
// Packing is gated by a memory budget (kDefaultPackedBytes, shared with the
// neighbor engine): an n-point graph needs n·⌈n/64⌉ plane words, and when
// that exceeds the budget the engine falls back to the hashed scatter and
// says so via the links.fallback_hashed counter.

#ifndef ROCK_GRAPH_LINK_ENGINE_H_
#define ROCK_GRAPH_LINK_ENGINE_H_

#include <cstddef>

#include "diag/metrics.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "similarity/packed.h"

namespace rock {

/// Options for the packed link engine.
struct PackedLinkOptions {
  /// Worker threads for the per-row popcount pass; 0 = hardware
  /// concurrency. Results are identical at any count.
  size_t num_threads = 1;

  /// Rows claimed per scheduling step by the parallel pass.
  size_t row_chunk = 16;

  /// Cap on total plane bytes (n · ⌈n/64⌉ words). Over budget the engine
  /// falls back to the hashed Fig. 4 scatter.
  size_t pack_budget_bytes = kDefaultPackedBytes;

  /// Metrics sink (may be null): links.candidate_pairs (popcount sweeps;
  /// candidate enumeration is exact, so this equals the stored non-zero
  /// pairs), links.pairs_counted (stored non-zero pairs),
  /// links.fallback_hashed (1 when the budget forced the hashed path) and
  /// the stage.links.pack timer.
  diag::MetricsRegistry* metrics = nullptr;
};

/// Computes all pairwise link counts with the bit-plane popcount engine.
/// Returns the matrix already frozen (CSR rows built directly, sorted
/// ascending); the hash rows materialize lazily on first Row()/Add().
/// Byte-identical frozen rows vs ComputeLinks(graph) + Freeze().
LinkMatrix ComputeLinksPacked(const NeighborGraph& graph,
                              const PackedLinkOptions& options = {});

}  // namespace rock

#endif  // ROCK_GRAPH_LINK_ENGINE_H_
