// librock — graph/link_engine.h
//
// Bit-plane link engine. The paper's Fig. 4 scatter pays one memory update
// per length-2 neighbor path — O(Σ mᵢ²) scalar increments. This engine
// instead packs every point's *neighbor row* N(p) into a plane of 64-bit
// words (one bit per point, the same plane layout as similarity/packed.h)
// and computes
//
//     link(p, q) = |N(p) ∩ N(q)| = popcount(row_p AND row_q)
//
// with the runtime-dispatched AVX2 nibble-LUT popcount kernel
// (similarity/packed.h IntersectPopcount). Sparsity is still exploited:
// candidates for row p are enumerated as the bitwise OR of its neighbors'
// rows — exactly the points sharing at least one neighbor with p, i.e.
// exactly the pairs with link > 0 — so no popcount sweep is ever wasted on
// a zero pair.
//
// The plane degrades quadratically, though: every popcount sweeps ⌈n/64⌉
// words whatever the counts, and the OR-mask enumeration alone costs
// Σ mᵢ · ⌈n/64⌉ word reads. So the engine carries a second exact pass for
// scale:
//
//   * dense ScanCount scatter — per row p, walk each neighbor's adjacency
//     suffix beyond p and increment a dense per-worker count array, marking
//     first touches in a ⌈n/64⌉-word bitmap whose sweep then emits the
//     row's partners in ascending order. Total work is exactly Σᵢ C(mᵢ, 2)
//     increments (each witness i contributes its within-neighborhood pair
//     count) — the Fig. 4 op count with array writes instead of hash-map
//     updates, and O(n) scratch per worker instead of an O(n²/64) plane.
//
// kAuto picks the scatter exactly when its total increment count undercuts
// the plane's OR-mask word reads alone (Σᵢ C(mᵢ, 2) < Σᵢ mᵢ · ⌈n/64⌉ — a
// certain win, both sides exact and data-only), which in practice flips
// from plane to scatter once average degree falls below ~2·⌈n/64⌉. Both
// passes produce the same UpperRow stream.
//
// Every row's candidate set and counts depend only on the input graph, and
// the mirror/CSR assembly pass is serial and index-ordered, so the frozen
// CSR rows are byte-identical to LinkMatrix::Freeze() of the Fig. 4 hashed
// oracle at any thread count (enforced by tests/link_engine_test.cc).
//
// Packing is gated by a memory budget (kDefaultPackedBytes, shared with the
// neighbor engine): an n-point graph needs n·⌈n/64⌉ plane words, and when
// the plane is selected but exceeds the budget the engine falls back to
// the hashed scatter and says so via the links.fallback_hashed counter
// (the dense scatter needs no plane and ignores the budget).

#ifndef ROCK_GRAPH_LINK_ENGINE_H_
#define ROCK_GRAPH_LINK_ENGINE_H_

#include <cstddef>

#include "diag/metrics.h"
#include "graph/links.h"
#include "graph/neighbors.h"
#include "similarity/packed.h"

namespace rock {

/// Which counting pass ComputeLinksPacked runs. Both are exact and emit
/// byte-identical frozen rows; only speed and memory differ.
enum class PackedLinkStrategy {
  /// Cost-model choice between the two (see the header comment); the
  /// default outside tests and benches.
  kAuto,
  /// Bit-plane popcount sweep. Over the packing budget this degrades to
  /// the hashed Fig. 4 oracle (links.fallback_hashed), preserving the
  /// historical contract for callers that pinned the plane.
  kPlane,
  /// Dense ScanCount scatter; O(n) scratch per worker, no budget gate.
  kScatter,
};

/// Options for the packed link engine.
struct PackedLinkOptions {
  /// Worker threads for the per-row counting pass; 0 = hardware
  /// concurrency. Results are identical at any count.
  size_t num_threads = 1;

  /// Rows claimed per scheduling step by the parallel pass.
  size_t row_chunk = 16;

  /// Counting-pass selection; kAuto outside tests.
  PackedLinkStrategy strategy = PackedLinkStrategy::kAuto;

  /// Cap on total plane bytes (n · ⌈n/64⌉ words). Over budget the plane
  /// pass falls back to the hashed Fig. 4 scatter; the dense scatter pass
  /// is not affected.
  size_t pack_budget_bytes = kDefaultPackedBytes;

  /// Metrics sink (may be null): links.candidate_pairs (pairs sharing ≥ 1
  /// neighbor; candidate enumeration is exact on both passes, so this
  /// equals the stored non-zero pairs), links.pairs_counted (stored
  /// non-zero pairs), links.scatter_pass (1 when the dense ScanCount pass
  /// ran), links.fallback_hashed (1 when the budget forced the hashed
  /// path) and the stage.links.pack timer.
  diag::MetricsRegistry* metrics = nullptr;
};

/// Computes all pairwise link counts with the bit-plane popcount engine.
/// Returns the matrix already frozen (CSR rows built directly, sorted
/// ascending); the hash rows materialize lazily on first Row()/Add().
/// Byte-identical frozen rows vs ComputeLinks(graph) + Freeze().
LinkMatrix ComputeLinksPacked(const NeighborGraph& graph,
                              const PackedLinkOptions& options = {});

}  // namespace rock

#endif  // ROCK_GRAPH_LINK_ENGINE_H_
