#include "graph/dense_matrix.h"

namespace rock {

Result<DenseMatrix> DenseMatrix::Multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matrix dimensions do not match");
  }
  DenseMatrix out(rows_, other.cols_);
  // i-k-j loop order for cache-friendly row accumulation.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const int64_t a = At(i, k);
      if (a == 0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

DenseMatrix AdjacencyMatrix(const NeighborGraph& graph) {
  const size_t n = graph.size();
  DenseMatrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (PointIndex j : graph.nbrlist[i]) a.At(i, j) = 1;
  }
  return a;
}

LinkMatrix ComputeLinksDense(const NeighborGraph& graph) {
  const size_t n = graph.size();
  DenseMatrix a = AdjacencyMatrix(graph);
  DenseMatrix squared = std::move(a.Multiply(a)).value();
  LinkMatrix links(n);
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      const int64_t c = squared.At(i, j);
      if (c > 0) links.Add(i, j, static_cast<LinkCount>(c));
    }
  }
  return links;
}

}  // namespace rock
