#include "graph/neighbor_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "diag/metrics.h"
#include "graph/parallel.h"
#include "similarity/batch.h"
#include "util/thread_pool.h"

namespace rock {
namespace {

using EdgeList = std::vector<std::pair<PointIndex, PointIndex>>;

// Upper bound on sim(i, j) from the two set sizes alone. Exact under IEEE
// round-to-nearest: inter ≤ s_min and uni ≥ s_max give inter/uni ≤
// s_min/s_max as rationals, and fl() is monotone, so fl(sim) ≤ fl(bound) —
// a pair with fl(bound) < θ can never satisfy fl(sim) ≥ θ. Two empty sets
// score 0 in every oracle, hence the s_max == 0 special case (which also
// keeps 0/0 NaN out of the comparison).
double SizeBound(uint64_t s_min, uint64_t s_max) {
  if (s_max == 0) return 0.0;
  return static_cast<double>(s_min) / static_cast<double>(s_max);
}

uint64_t TotalPairs(size_t n) {
  if (n < 2) return 0;
  return static_cast<uint64_t>(n) * static_cast<uint64_t>(n - 1) / 2;
}

// Per-worker edge buffers → degree count, reserve, fill, sort rows. Same
// scatter as ComputeNeighborsParallel: buffer order varies with scheduling,
// but the sorted rows (and so the graph) do not.
NeighborGraph ScatterEdges(size_t n, const std::vector<EdgeList>& edges) {
  NeighborGraph graph;
  graph.nbrlist.resize(n);
  std::vector<size_t> degree(n, 0);
  for (const auto& local : edges) {
    for (const auto& [i, j] : local) {
      ++degree[i];
      ++degree[j];
    }
  }
  for (size_t i = 0; i < n; ++i) graph.nbrlist[i].reserve(degree[i]);
  for (const auto& local : edges) {
    for (const auto& [i, j] : local) {
      graph.nbrlist[i].push_back(j);
      graph.nbrlist[j].push_back(i);
    }
  }
  for (auto& l : graph.nbrlist) std::sort(l.begin(), l.end());
  return graph;
}

// Size-sorted window sweep: along the (size asc, index asc) order, the
// length bound for a fixed p is monotone in q, so each position scans the
// contiguous prefix [p+1, hi) and batch-evaluates it with the packed
// kernel. Without a length bound (pairwise-missing) the window is all of
// [p+1, n) and the pass degrades to a batched full sweep.
NeighborGraph WindowPass(const BatchSimilarity& batch, double theta,
                         const PackedNeighborOptions& options,
                         uint64_t* pairs_evaluated) {
  const size_t n = batch.size();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();
  const bool bounded = sizes != nullptr && theta > 0.0;
  std::vector<PointIndex> order(n);
  std::iota(order.begin(), order.end(), PointIndex{0});
  if (bounded) {
    std::sort(order.begin(), order.end(), [&](PointIndex a, PointIndex b) {
      const uint32_t sa = (*sizes)[a];
      const uint32_t sb = (*sizes)[b];
      return sa != sb ? sa < sb : a < b;
    });
  }

  const size_t num_threads = ResolveThreads(options.num_threads);
  std::vector<EdgeList> edges(std::max<size_t>(num_threads, 1));
  std::vector<uint64_t> evaluated(std::max<size_t>(num_threads, 1), 0);
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    EdgeList& local = edges[worker];
    std::vector<double> vals;
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t p = begin; p < end; ++p) {
        const PointIndex i = order[p];
        size_t hi = n;
        if (bounded) {
          // First position whose size fails the bound (sizes ascend along
          // `order`, so the predicate is monotone).
          const uint64_t sp = (*sizes)[i];
          size_t lo = p + 1;
          while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if (SizeBound(sp, (*sizes)[order[mid]]) >= theta) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          hi = lo;
        }
        if (hi <= p + 1) continue;
        const size_t count = hi - (p + 1);
        vals.resize(count);
        batch.SimilarityBatch(i, order.data() + (p + 1), count, vals.data());
        evaluated[worker] += count;
        for (size_t t = 0; t < count; ++t) {
          if (vals[t] >= theta) {
            const PointIndex j = order[p + 1 + t];
            local.emplace_back(std::min(i, j), std::max(i, j));
          }
        }
      }
    }
  });
  *pairs_evaluated = 0;
  for (const uint64_t e : evaluated) *pairs_evaluated += e;
  return ScatterEdges(n, edges);
}

// Inverted-index ScanCount pass: per-item postings (rows ascending)
// enumerate exactly the pairs sharing an item — for θ > 0 every other pair
// has sim == 0 (batch.h items() contract) and is pruned without being
// touched. Under the set-Jaccard contract the intersection count already
// determines the exact similarity; otherwise survivors are batch-evaluated.
NeighborGraph CandidatePass(const BatchSimilarity& batch, double theta,
                            const PackedNeighborOptions& options,
                            uint64_t* pairs_evaluated) {
  const size_t n = batch.size();
  const SparseItemView& view = *batch.items();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();

  // Postings CSR; filling rows in ascending order keeps each list sorted.
  const size_t universe = view.universe;
  std::vector<uint64_t> post_off(universe + 1, 0);
  for (const uint32_t item : view.items) ++post_off[item + 1];
  for (size_t v = 0; v < universe; ++v) post_off[v + 1] += post_off[v];
  std::vector<uint32_t> post(view.items.size());
  std::vector<uint64_t> cursor(post_off.begin(), post_off.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    for (uint64_t k = view.row_offsets[r]; k < view.row_offsets[r + 1]; ++k) {
      const uint32_t item = view.items[static_cast<size_t>(k)];
      post[static_cast<size_t>(cursor[item]++)] = static_cast<uint32_t>(r);
    }
  }

  const size_t num_threads = ResolveThreads(options.num_threads);
  std::vector<EdgeList> edges(std::max<size_t>(num_threads, 1));
  std::vector<uint64_t> evaluated(std::max<size_t>(num_threads, 1), 0);
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    EdgeList& local = edges[worker];
    std::vector<uint32_t> count(n, 0);
    std::vector<uint32_t> touched;
    std::vector<double> vals;
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t r = begin; r < end; ++r) {
        const auto i = static_cast<PointIndex>(r);
        touched.clear();
        for (uint64_t k = view.row_offsets[r]; k < view.row_offsets[r + 1];
             ++k) {
          const uint32_t item = view.items[static_cast<size_t>(k)];
          const uint32_t* plo = post.data() + post_off[item];
          const uint32_t* phi = post.data() + post_off[item + 1];
          // Rows > r form a suffix of the ascending posting list.
          for (const uint32_t* it = std::upper_bound(plo, phi, i); it != phi;
               ++it) {
            if (count[*it]++ == 0) touched.push_back(*it);
          }
        }
        if (sizes != nullptr) {
          const uint64_t si = (*sizes)[r];
          for (const uint32_t j : touched) {
            const uint64_t inter = count[j];
            count[j] = 0;
            const uint64_t sj = (*sizes)[j];
            if (SizeBound(std::min(si, sj), std::max(si, sj)) < theta) {
              continue;
            }
            ++evaluated[worker];
            // Set-Jaccard contract (batch.h): this is the exact double the
            // per-pair oracle computes. uni ≥ 1 because an item is shared.
            const uint64_t uni = si + sj - inter;
            const double s =
                static_cast<double>(inter) / static_cast<double>(uni);
            if (s >= theta) local.emplace_back(i, j);
          }
        } else {
          vals.resize(touched.size());
          if (!touched.empty()) {
            batch.SimilarityBatch(r, touched.data(), touched.size(),
                                  vals.data());
          }
          evaluated[worker] += touched.size();
          for (size_t t = 0; t < touched.size(); ++t) {
            count[touched[t]] = 0;
            if (vals[t] >= theta) local.emplace_back(i, touched[t]);
          }
        }
      }
    }
  });
  *pairs_evaluated = 0;
  for (const uint64_t e : evaluated) *pairs_evaluated += e;
  return ScatterEdges(n, edges);
}

// MinHash LSH banding pass: per-row signatures → per-band bucket keys →
// bucket co-membership candidates → sorted dedup → exact θ-verification of
// every candidate through the packed kernel. Precision is 1 by
// construction; recall follows LshCollisionProbability. Every stage is
// sharded over the thread pool, and every stage's output is a function of
// the data + seed alone (per-band buffers, a scheduling-independent sorted
// dedup, and the same ScatterEdges assembly as the exact passes), so the
// graph is deterministic for a fixed seed at any thread count.
NeighborGraph LshPass(const BatchSimilarity& batch, double theta,
                      const PackedNeighborOptions& options,
                      uint64_t* pairs_evaluated, uint64_t* candidates_out,
                      uint64_t* skipped_empty) {
  const size_t n = batch.size();
  const SparseItemView& view = *batch.items();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();
  const size_t bands = options.lsh.num_bands;
  const size_t rows_per_band = options.lsh.rows_per_band;
  const size_t sig_len = bands * rows_per_band;
  const size_t num_threads = ResolveThreads(options.num_threads);
  const size_t workers = std::max<size_t>(num_threads, 1);
  const auto row_empty = [&view](size_t r) {
    return view.row_offsets[r + 1] == view.row_offsets[r];
  };

  // Signatures, sharded by row into flat storage. Empty rows are skipped
  // outright: their all-max signatures would all collide with each other
  // in every band — a quadratic candidate blow-up in one bucket at scale —
  // yet their exact similarity is 0 < θ with everything, so for the θ > 0
  // this pass requires, skipping them loses no edge.
  std::vector<uint64_t> sigs(n * sig_len);
  const MinHasher hasher(sig_len, options.lsh.seed);
  size_t empty_rows = 0;
  for (size_t r = 0; r < n; ++r) {
    if (row_empty(r)) ++empty_rows;
  }
  *skipped_empty = empty_rows;
  ParallelChunks(num_threads, n, std::max<size_t>(1, options.row_chunk),
                 [&](size_t begin, size_t end) {
                   for (size_t r = begin; r < end; ++r) {
                     if (row_empty(r)) continue;
                     const uint64_t off = view.row_offsets[r];
                     hasher.SignatureInto(
                         view.items.data() + off,
                         static_cast<size_t>(view.row_offsets[r + 1] - off),
                         sigs.data() + r * sig_len);
                   }
                 });

  // Banding, sharded by band: rows sorted by bucket key, each equal-key run
  // emits its C(m, 2) member pairs as (lo << 32) | hi keys into that band's
  // buffer. Output is keyed by band — not by worker — so the concatenation
  // below is schedule-independent.
  std::vector<std::vector<uint64_t>> band_pairs(bands);
  ParallelChunks(num_threads, bands, 1, [&](size_t b0, size_t b1) {
    std::vector<std::pair<uint64_t, uint32_t>> keys;
    keys.reserve(n - empty_rows);
    for (size_t band = b0; band < b1; ++band) {
      keys.clear();
      for (size_t r = 0; r < n; ++r) {
        if (row_empty(r)) continue;
        keys.emplace_back(
            LshBandKey(sigs.data() + r * sig_len + band * rows_per_band,
                       rows_per_band, band),
            static_cast<uint32_t>(r));
      }
      std::sort(keys.begin(), keys.end());
      std::vector<uint64_t>& out = band_pairs[band];
      size_t lo = 0;
      while (lo < keys.size()) {
        size_t hi = lo + 1;
        while (hi < keys.size() && keys[hi].first == keys[lo].first) ++hi;
        // Members ascend within the run (ties sort by row), so a < b below.
        for (size_t a = lo; a < hi; ++a) {
          for (size_t b = a + 1; b < hi; ++b) {
            out.push_back((uint64_t{keys[a].second} << 32) | keys[b].second);
          }
        }
        lo = hi;
      }
    }
  });
  sigs.clear();
  sigs.shrink_to_fit();

  // Cross-band dedup: one sorted unique candidate list. Sorting also groups
  // the verification batches by their lower row.
  size_t raw = 0;
  for (const auto& bp : band_pairs) raw += bp.size();
  std::vector<uint64_t> candidates;
  candidates.reserve(raw);
  for (auto& bp : band_pairs) {
    candidates.insert(candidates.end(), bp.begin(), bp.end());
    bp.clear();
    bp.shrink_to_fit();
  }
  SortUniqueParallel(&candidates, num_threads);
  *candidates_out = candidates.size();

  // Exact verification, sharded over the candidate array. Runs of equal
  // lower row become one packed batch call; a run split across chunk
  // boundaries just becomes two calls with identical results. The θ length
  // bound prunes a candidate before it reaches the kernel (exact, same
  // argument as the window pass).
  std::vector<EdgeList> edges(workers);
  std::vector<uint64_t> evaluated(workers, 0);
  std::atomic<size_t> next{0};
  constexpr size_t kVerifyChunk = 1024;
  ParallelInvoke(num_threads, [&](size_t worker) {
    EdgeList& local = edges[worker];
    std::vector<uint32_t> js;
    std::vector<double> vals;
    while (true) {
      const size_t begin = next.fetch_add(kVerifyChunk);
      if (begin >= candidates.size()) break;
      const size_t end = std::min(begin + kVerifyChunk, candidates.size());
      size_t p = begin;
      while (p < end) {
        const auto i = static_cast<PointIndex>(candidates[p] >> 32);
        size_t run = p;
        js.clear();
        while (run < end && static_cast<PointIndex>(candidates[run] >> 32) ==
                                i) {
          const auto j =
              static_cast<uint32_t>(candidates[run] & 0xffffffffu);
          if (sizes == nullptr ||
              SizeBound(std::min((*sizes)[i], (*sizes)[j]),
                        std::max((*sizes)[i], (*sizes)[j])) >= theta) {
            js.push_back(j);
          }
          ++run;
        }
        if (!js.empty()) {
          vals.resize(js.size());
          batch.SimilarityBatch(i, js.data(), js.size(), vals.data());
          evaluated[worker] += js.size();
          for (size_t t = 0; t < js.size(); ++t) {
            if (vals[t] >= theta) {
              local.emplace_back(i, static_cast<PointIndex>(js[t]));
            }
          }
        }
        p = run;
      }
    }
  });
  *pairs_evaluated = 0;
  for (const uint64_t e : evaluated) *pairs_evaluated += e;
  return ScatterEdges(n, edges);
}

// The window pass's exact evaluated-pair count, in O(n log n): same sorted
// order + binary searches over sizes alone.
uint64_t WindowPairsExact(const BatchSimilarity& batch, double theta) {
  const size_t n = batch.size();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();
  if (sizes == nullptr || theta <= 0.0) return TotalPairs(n);
  std::vector<uint32_t> sorted(*sizes);
  std::sort(sorted.begin(), sorted.end());
  uint64_t pairs = 0;
  for (size_t p = 0; p < n; ++p) {
    const uint64_t sp = sorted[p];
    size_t lo = p + 1;
    size_t hi = n;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (SizeBound(sp, sorted[mid]) >= theta) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pairs += lo - (p + 1);
  }
  return pairs;
}

// ≈ upper-triangular ScanCount increments: Σ_item C(df, 2).
uint64_t CandidateScanOps(const SparseItemView& view) {
  std::vector<uint64_t> df(view.universe, 0);
  for (const uint32_t item : view.items) ++df[item];
  uint64_t ops = 0;
  for (const uint64_t d : df) {
    if (d > 1) ops += d * (d - 1) / 2;
  }
  return ops;
}

// Estimated LSH-pass op count, in the same rough one-memory-touch units as
// the two exact estimates above. The fixed part (signature build + per-band
// bucketing) follows from the shapes alone; the data-dependent part — raw
// bucket collisions to dedup and unique candidates to verify — is the
// banding curve integrated over the similarity distribution, estimated
// from a small deterministic sample of pairs (seeded by the LSH seed).
// This is how kAuto sees density and θ, not just n, and it is a function
// of data + seed alone, so the choice is identical at any thread count.
uint64_t LshOpsEstimate(const BatchSimilarity& batch, const LshOptions& lsh,
                        uint64_t nnz, uint64_t words) {
  const size_t n = batch.size();
  const auto b = static_cast<double>(lsh.num_bands);
  const auto r = static_cast<double>(lsh.rows_per_band);
  const uint64_t sig_len = lsh.num_bands * lsh.rows_per_band;
  double ops = static_cast<double>(nnz * sig_len) +
               static_cast<double>(n) * b;
  constexpr size_t kSamples = 256;
  if (n >= 2) {
    SplitMix64 sm(lsh.seed ^ (uint64_t{n} * 0x9e3779b97f4a7c15ULL));
    double raw = 0.0;
    double cand = 0.0;
    for (size_t s = 0; s < kSamples; ++s) {
      const auto i = static_cast<size_t>(sm.Next() % n);
      auto j = static_cast<uint32_t>(sm.Next() % (n - 1));
      if (j >= i) ++j;
      double v = 0.0;
      batch.SimilarityBatch(i, &j, 1, &v);
      const double per_band = std::pow(std::clamp(v, 0.0, 1.0), r);
      raw += b * per_band;                        // duplicate collisions
      cand += 1.0 - std::pow(1.0 - per_band, b);  // unique candidate?
    }
    const double scale = static_cast<double>(TotalPairs(n)) /
                         static_cast<double>(kSamples);
    // Dedup charges ~log₂(raw) comparisons per raw pair (call it 8); every
    // unique candidate pays one popcount sweep.
    ops += scale * (raw * 8.0 + cand * static_cast<double>(words));
  }
  return ops >= 1e19 ? std::numeric_limits<uint64_t>::max()
                     : static_cast<uint64_t>(ops);
}

}  // namespace

Result<NeighborGraph> ComputeNeighborsPacked(
    const PointSimilarity& sim, double theta,
    const PackedNeighborOptions& options) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  diag::SetGauge(options.metrics, "graph.threads",
                 static_cast<double>(ResolveThreads(options.num_threads)));
  std::unique_ptr<BatchSimilarity> batch;
  {
    diag::ScopedTimer pack_timer(options.metrics, "stage.neighbors.pack");
    batch = sim.MakeBatch();
  }
  if (batch == nullptr) {
    // No batch kernel (expert similarity, or packing over budget): the
    // scalar engines are the answer, not an error.
    diag::AddCounter(options.metrics, "neighbors.fallback_scalar", 1);
    auto graph = options.num_threads == 1
                     ? ComputeNeighbors(sim, theta)
                     : ComputeNeighborsParallel(
                           sim, theta,
                           {options.num_threads, options.row_chunk});
    if (graph.ok()) {
      diag::AddCounter(options.metrics, "neighbors.pairs_evaluated",
                       TotalPairs(sim.size()));
      diag::AddCounter(options.metrics, "neighbors.pairs_pruned", 0);
    }
    return graph;
  }

  const size_t n = batch->size();
  const uint64_t total = TotalPairs(n);
  PackedStrategy strategy = options.strategy;
  const bool candidates_ok = theta > 0.0 && batch->items() != nullptr;
  if (candidates_ok && (strategy == PackedStrategy::kLsh ||
                        (strategy == PackedStrategy::kAuto &&
                         options.allow_lsh))) {
    ROCK_RETURN_IF_ERROR(options.lsh.Validate());
  }
  if (!candidates_ok) {
    // θ = 0 needs the complete graph (nothing shares an item with an empty
    // row, yet everything neighbors it), so only the window pass is exact.
    strategy = PackedStrategy::kWindow;
  } else if (strategy == PackedStrategy::kAuto) {
    // Window cost ≈ surviving pairs × words per popcount sweep; candidate
    // cost ≈ postings increments. Both depend only on the data, so the
    // choice — and with it every neighbors.* metric — is identical at any
    // thread count.
    const uint64_t words = std::max<uint64_t>(
        1, (uint64_t{batch->items()->universe} + 63) / 64);
    const uint64_t window_pairs = WindowPairsExact(*batch, theta);
    const uint64_t window_cost =
        window_pairs > std::numeric_limits<uint64_t>::max() / words
            ? std::numeric_limits<uint64_t>::max()
            : window_pairs * words;
    const uint64_t scan_ops = CandidateScanOps(*batch->items());
    strategy = scan_ops < window_cost ? PackedStrategy::kCandidates
                                      : PackedStrategy::kWindow;
    if (options.allow_lsh) {
      const uint64_t lsh_ops = LshOpsEstimate(
          *batch, options.lsh, batch->items()->items.size(), words);
      const uint64_t exact_ops = std::min(window_cost, scan_ops);
      if (lsh_ops <
              std::numeric_limits<uint64_t>::max() / kLshAutoFactor &&
          exact_ops > kLshAutoFactor * lsh_ops) {
        strategy = PackedStrategy::kLsh;
      }
    }
  }

  uint64_t evaluated = 0;
  NeighborGraph graph;
  if (strategy == PackedStrategy::kLsh) {
    uint64_t lsh_candidates = 0;
    uint64_t skipped_empty = 0;
    graph = LshPass(*batch, theta, options, &evaluated, &lsh_candidates,
                    &skipped_empty);
    diag::AddCounter(options.metrics, "neighbors.lsh_pass", 1);
    diag::AddCounter(options.metrics, "neighbors.lsh_candidates",
                     lsh_candidates);
    diag::AddCounter(options.metrics, "neighbors.lsh_skipped_empty",
                     skipped_empty);
  } else if (strategy == PackedStrategy::kCandidates) {
    graph = CandidatePass(*batch, theta, options, &evaluated);
    diag::AddCounter(options.metrics, "neighbors.candidate_pass", 1);
  } else {
    graph = WindowPass(*batch, theta, options, &evaluated);
  }
  diag::AddCounter(options.metrics, "neighbors.pairs_evaluated", evaluated);
  diag::AddCounter(options.metrics, "neighbors.pairs_pruned",
                   total - evaluated);
  return graph;
}

}  // namespace rock
