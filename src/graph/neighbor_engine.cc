#include "graph/neighbor_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "diag/metrics.h"
#include "graph/parallel.h"
#include "similarity/batch.h"
#include "util/thread_pool.h"

namespace rock {
namespace {

using EdgeList = std::vector<std::pair<PointIndex, PointIndex>>;

// Upper bound on sim(i, j) from the two set sizes alone. Exact under IEEE
// round-to-nearest: inter ≤ s_min and uni ≥ s_max give inter/uni ≤
// s_min/s_max as rationals, and fl() is monotone, so fl(sim) ≤ fl(bound) —
// a pair with fl(bound) < θ can never satisfy fl(sim) ≥ θ. Two empty sets
// score 0 in every oracle, hence the s_max == 0 special case (which also
// keeps 0/0 NaN out of the comparison).
double SizeBound(uint64_t s_min, uint64_t s_max) {
  if (s_max == 0) return 0.0;
  return static_cast<double>(s_min) / static_cast<double>(s_max);
}

uint64_t TotalPairs(size_t n) {
  if (n < 2) return 0;
  return static_cast<uint64_t>(n) * static_cast<uint64_t>(n - 1) / 2;
}

// Per-worker edge buffers → degree count, reserve, fill, sort rows. Same
// scatter as ComputeNeighborsParallel: buffer order varies with scheduling,
// but the sorted rows (and so the graph) do not.
NeighborGraph ScatterEdges(size_t n, const std::vector<EdgeList>& edges) {
  NeighborGraph graph;
  graph.nbrlist.resize(n);
  std::vector<size_t> degree(n, 0);
  for (const auto& local : edges) {
    for (const auto& [i, j] : local) {
      ++degree[i];
      ++degree[j];
    }
  }
  for (size_t i = 0; i < n; ++i) graph.nbrlist[i].reserve(degree[i]);
  for (const auto& local : edges) {
    for (const auto& [i, j] : local) {
      graph.nbrlist[i].push_back(j);
      graph.nbrlist[j].push_back(i);
    }
  }
  for (auto& l : graph.nbrlist) std::sort(l.begin(), l.end());
  return graph;
}

// Size-sorted window sweep: along the (size asc, index asc) order, the
// length bound for a fixed p is monotone in q, so each position scans the
// contiguous prefix [p+1, hi) and batch-evaluates it with the packed
// kernel. Without a length bound (pairwise-missing) the window is all of
// [p+1, n) and the pass degrades to a batched full sweep.
NeighborGraph WindowPass(const BatchSimilarity& batch, double theta,
                         const PackedNeighborOptions& options,
                         uint64_t* pairs_evaluated) {
  const size_t n = batch.size();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();
  const bool bounded = sizes != nullptr && theta > 0.0;
  std::vector<PointIndex> order(n);
  std::iota(order.begin(), order.end(), PointIndex{0});
  if (bounded) {
    std::sort(order.begin(), order.end(), [&](PointIndex a, PointIndex b) {
      const uint32_t sa = (*sizes)[a];
      const uint32_t sb = (*sizes)[b];
      return sa != sb ? sa < sb : a < b;
    });
  }

  const size_t num_threads = ResolveThreads(options.num_threads);
  std::vector<EdgeList> edges(std::max<size_t>(num_threads, 1));
  std::vector<uint64_t> evaluated(std::max<size_t>(num_threads, 1), 0);
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    EdgeList& local = edges[worker];
    std::vector<double> vals;
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t p = begin; p < end; ++p) {
        const PointIndex i = order[p];
        size_t hi = n;
        if (bounded) {
          // First position whose size fails the bound (sizes ascend along
          // `order`, so the predicate is monotone).
          const uint64_t sp = (*sizes)[i];
          size_t lo = p + 1;
          while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if (SizeBound(sp, (*sizes)[order[mid]]) >= theta) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          hi = lo;
        }
        if (hi <= p + 1) continue;
        const size_t count = hi - (p + 1);
        vals.resize(count);
        batch.SimilarityBatch(i, order.data() + (p + 1), count, vals.data());
        evaluated[worker] += count;
        for (size_t t = 0; t < count; ++t) {
          if (vals[t] >= theta) {
            const PointIndex j = order[p + 1 + t];
            local.emplace_back(std::min(i, j), std::max(i, j));
          }
        }
      }
    }
  });
  *pairs_evaluated = 0;
  for (const uint64_t e : evaluated) *pairs_evaluated += e;
  return ScatterEdges(n, edges);
}

// Inverted-index ScanCount pass: per-item postings (rows ascending)
// enumerate exactly the pairs sharing an item — for θ > 0 every other pair
// has sim == 0 (batch.h items() contract) and is pruned without being
// touched. Under the set-Jaccard contract the intersection count already
// determines the exact similarity; otherwise survivors are batch-evaluated.
NeighborGraph CandidatePass(const BatchSimilarity& batch, double theta,
                            const PackedNeighborOptions& options,
                            uint64_t* pairs_evaluated) {
  const size_t n = batch.size();
  const SparseItemView& view = *batch.items();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();

  // Postings CSR; filling rows in ascending order keeps each list sorted.
  const size_t universe = view.universe;
  std::vector<uint64_t> post_off(universe + 1, 0);
  for (const uint32_t item : view.items) ++post_off[item + 1];
  for (size_t v = 0; v < universe; ++v) post_off[v + 1] += post_off[v];
  std::vector<uint32_t> post(view.items.size());
  std::vector<uint64_t> cursor(post_off.begin(), post_off.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    for (uint64_t k = view.row_offsets[r]; k < view.row_offsets[r + 1]; ++k) {
      const uint32_t item = view.items[static_cast<size_t>(k)];
      post[static_cast<size_t>(cursor[item]++)] = static_cast<uint32_t>(r);
    }
  }

  const size_t num_threads = ResolveThreads(options.num_threads);
  std::vector<EdgeList> edges(std::max<size_t>(num_threads, 1));
  std::vector<uint64_t> evaluated(std::max<size_t>(num_threads, 1), 0);
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    EdgeList& local = edges[worker];
    std::vector<uint32_t> count(n, 0);
    std::vector<uint32_t> touched;
    std::vector<double> vals;
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t r = begin; r < end; ++r) {
        const auto i = static_cast<PointIndex>(r);
        touched.clear();
        for (uint64_t k = view.row_offsets[r]; k < view.row_offsets[r + 1];
             ++k) {
          const uint32_t item = view.items[static_cast<size_t>(k)];
          const uint32_t* plo = post.data() + post_off[item];
          const uint32_t* phi = post.data() + post_off[item + 1];
          // Rows > r form a suffix of the ascending posting list.
          for (const uint32_t* it = std::upper_bound(plo, phi, i); it != phi;
               ++it) {
            if (count[*it]++ == 0) touched.push_back(*it);
          }
        }
        if (sizes != nullptr) {
          const uint64_t si = (*sizes)[r];
          for (const uint32_t j : touched) {
            const uint64_t inter = count[j];
            count[j] = 0;
            const uint64_t sj = (*sizes)[j];
            if (SizeBound(std::min(si, sj), std::max(si, sj)) < theta) {
              continue;
            }
            ++evaluated[worker];
            // Set-Jaccard contract (batch.h): this is the exact double the
            // per-pair oracle computes. uni ≥ 1 because an item is shared.
            const uint64_t uni = si + sj - inter;
            const double s =
                static_cast<double>(inter) / static_cast<double>(uni);
            if (s >= theta) local.emplace_back(i, j);
          }
        } else {
          vals.resize(touched.size());
          if (!touched.empty()) {
            batch.SimilarityBatch(r, touched.data(), touched.size(),
                                  vals.data());
          }
          evaluated[worker] += touched.size();
          for (size_t t = 0; t < touched.size(); ++t) {
            count[touched[t]] = 0;
            if (vals[t] >= theta) local.emplace_back(i, touched[t]);
          }
        }
      }
    }
  });
  *pairs_evaluated = 0;
  for (const uint64_t e : evaluated) *pairs_evaluated += e;
  return ScatterEdges(n, edges);
}

// The window pass's exact evaluated-pair count, in O(n log n): same sorted
// order + binary searches over sizes alone.
uint64_t WindowPairsExact(const BatchSimilarity& batch, double theta) {
  const size_t n = batch.size();
  const std::vector<uint32_t>* sizes = batch.prune_sizes();
  if (sizes == nullptr || theta <= 0.0) return TotalPairs(n);
  std::vector<uint32_t> sorted(*sizes);
  std::sort(sorted.begin(), sorted.end());
  uint64_t pairs = 0;
  for (size_t p = 0; p < n; ++p) {
    const uint64_t sp = sorted[p];
    size_t lo = p + 1;
    size_t hi = n;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (SizeBound(sp, sorted[mid]) >= theta) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pairs += lo - (p + 1);
  }
  return pairs;
}

// ≈ upper-triangular ScanCount increments: Σ_item C(df, 2).
uint64_t CandidateScanOps(const SparseItemView& view) {
  std::vector<uint64_t> df(view.universe, 0);
  for (const uint32_t item : view.items) ++df[item];
  uint64_t ops = 0;
  for (const uint64_t d : df) {
    if (d > 1) ops += d * (d - 1) / 2;
  }
  return ops;
}

}  // namespace

Result<NeighborGraph> ComputeNeighborsPacked(
    const PointSimilarity& sim, double theta,
    const PackedNeighborOptions& options) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  std::unique_ptr<BatchSimilarity> batch;
  {
    diag::ScopedTimer pack_timer(options.metrics, "stage.neighbors.pack");
    batch = sim.MakeBatch();
  }
  if (batch == nullptr) {
    // No batch kernel (expert similarity, or packing over budget): the
    // scalar engines are the answer, not an error.
    diag::AddCounter(options.metrics, "neighbors.fallback_scalar", 1);
    auto graph = options.num_threads == 1
                     ? ComputeNeighbors(sim, theta)
                     : ComputeNeighborsParallel(
                           sim, theta,
                           {options.num_threads, options.row_chunk});
    if (graph.ok()) {
      diag::AddCounter(options.metrics, "neighbors.pairs_evaluated",
                       TotalPairs(sim.size()));
      diag::AddCounter(options.metrics, "neighbors.pairs_pruned", 0);
    }
    return graph;
  }

  const size_t n = batch->size();
  const uint64_t total = TotalPairs(n);
  PackedStrategy strategy = options.strategy;
  const bool candidates_ok = theta > 0.0 && batch->items() != nullptr;
  if (!candidates_ok) {
    // θ = 0 needs the complete graph (nothing shares an item with an empty
    // row, yet everything neighbors it), so only the window pass is exact.
    strategy = PackedStrategy::kWindow;
  } else if (strategy == PackedStrategy::kAuto) {
    // Window cost ≈ surviving pairs × words per popcount sweep; candidate
    // cost ≈ postings increments. Both depend only on the data, so the
    // choice — and with it every neighbors.* metric — is identical at any
    // thread count.
    const uint64_t words = std::max<uint64_t>(
        1, (uint64_t{batch->items()->universe} + 63) / 64);
    const uint64_t window_pairs = WindowPairsExact(*batch, theta);
    const uint64_t window_cost =
        window_pairs > std::numeric_limits<uint64_t>::max() / words
            ? std::numeric_limits<uint64_t>::max()
            : window_pairs * words;
    strategy = CandidateScanOps(*batch->items()) < window_cost
                   ? PackedStrategy::kCandidates
                   : PackedStrategy::kWindow;
  }

  uint64_t evaluated = 0;
  NeighborGraph graph;
  if (strategy == PackedStrategy::kCandidates) {
    graph = CandidatePass(*batch, theta, options, &evaluated);
    diag::AddCounter(options.metrics, "neighbors.candidate_pass", 1);
  } else {
    graph = WindowPass(*batch, theta, options, &evaluated);
  }
  diag::AddCounter(options.metrics, "neighbors.pairs_evaluated", evaluated);
  diag::AddCounter(options.metrics, "neighbors.pairs_pruned",
                   total - evaluated);
  return graph;
}

}  // namespace rock
