#include "graph/strassen.h"

#include <algorithm>

namespace rock {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Square block with shared backing storage; all recursion works on views to
// avoid repeated materialization.
struct Block {
  const int64_t* data;
  size_t stride;
  size_t dim;

  int64_t At(size_t r, size_t c) const { return data[r * stride + c]; }
  Block Quadrant(size_t qr, size_t qc) const {
    const size_t half = dim / 2;
    return Block{data + qr * half * stride + qc * half, stride, half};
  }
};

struct MutBlock {
  int64_t* data;
  size_t stride;
  size_t dim;

  int64_t& At(size_t r, size_t c) { return data[r * stride + c]; }
  MutBlock Quadrant(size_t qr, size_t qc) {
    const size_t half = dim / 2;
    return MutBlock{data + qr * half * stride + qc * half, stride, half};
  }
  Block AsConst() const { return Block{data, stride, dim}; }
};

void AddInto(const Block& a, const Block& b, MutBlock out) {
  for (size_t r = 0; r < a.dim; ++r) {
    for (size_t c = 0; c < a.dim; ++c) {
      out.At(r, c) = a.At(r, c) + b.At(r, c);
    }
  }
}

void SubInto(const Block& a, const Block& b, MutBlock out) {
  for (size_t r = 0; r < a.dim; ++r) {
    for (size_t c = 0; c < a.dim; ++c) {
      out.At(r, c) = a.At(r, c) - b.At(r, c);
    }
  }
}

void NaiveMultiply(const Block& a, const Block& b, MutBlock out) {
  const size_t n = a.dim;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) out.At(r, c) = 0;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < n; ++k) {
      const int64_t v = a.At(i, k);
      if (v == 0) continue;
      for (size_t j = 0; j < n; ++j) {
        out.At(i, j) += v * b.At(k, j);
      }
    }
  }
}

void StrassenRecurse(const Block& a, const Block& b, MutBlock out,
                     size_t cutoff) {
  const size_t n = a.dim;
  if (n <= cutoff) {
    NaiveMultiply(a, b, out);
    return;
  }
  const size_t half = n / 2;

  const Block a11 = a.Quadrant(0, 0), a12 = a.Quadrant(0, 1);
  const Block a21 = a.Quadrant(1, 0), a22 = a.Quadrant(1, 1);
  const Block b11 = b.Quadrant(0, 0), b12 = b.Quadrant(0, 1);
  const Block b21 = b.Quadrant(1, 0), b22 = b.Quadrant(1, 1);

  // Scratch: two operand buffers + seven products, each half×half.
  const size_t cells = half * half;
  std::vector<int64_t> scratch(2 * cells);
  MutBlock t1{scratch.data(), half, half};
  MutBlock t2{scratch.data() + cells, half, half};

  std::vector<int64_t> products(7 * cells);
  auto product = [&](size_t idx) {
    return MutBlock{products.data() + idx * cells, half, half};
  };

  // M1 = (A11 + A22)(B11 + B22)
  AddInto(a11, a22, t1);
  AddInto(b11, b22, t2);
  StrassenRecurse(t1.AsConst(), t2.AsConst(), product(0), cutoff);
  // M2 = (A21 + A22) B11
  AddInto(a21, a22, t1);
  StrassenRecurse(t1.AsConst(), b11, product(1), cutoff);
  // M3 = A11 (B12 − B22)
  SubInto(b12, b22, t2);
  StrassenRecurse(a11, t2.AsConst(), product(2), cutoff);
  // M4 = A22 (B21 − B11)
  SubInto(b21, b11, t2);
  StrassenRecurse(a22, t2.AsConst(), product(3), cutoff);
  // M5 = (A11 + A12) B22
  AddInto(a11, a12, t1);
  StrassenRecurse(t1.AsConst(), b22, product(4), cutoff);
  // M6 = (A21 − A11)(B11 + B12)
  SubInto(a21, a11, t1);
  AddInto(b11, b12, t2);
  StrassenRecurse(t1.AsConst(), t2.AsConst(), product(5), cutoff);
  // M7 = (A12 − A22)(B21 + B22)
  SubInto(a12, a22, t1);
  AddInto(b21, b22, t2);
  StrassenRecurse(t1.AsConst(), t2.AsConst(), product(6), cutoff);

  MutBlock c11 = out.Quadrant(0, 0), c12 = out.Quadrant(0, 1);
  MutBlock c21 = out.Quadrant(1, 0), c22 = out.Quadrant(1, 1);
  const auto m = [&](size_t idx) {
    return Block{products.data() + idx * cells, half, half};
  };
  for (size_t r = 0; r < half; ++r) {
    for (size_t c = 0; c < half; ++c) {
      const int64_t m1 = m(0).At(r, c), m2 = m(1).At(r, c);
      const int64_t m3 = m(2).At(r, c), m4 = m(3).At(r, c);
      const int64_t m5 = m(4).At(r, c), m6 = m(5).At(r, c);
      const int64_t m7 = m(6).At(r, c);
      c11.At(r, c) = m1 + m4 - m5 + m7;
      c12.At(r, c) = m3 + m5;
      c21.At(r, c) = m2 + m4;
      c22.At(r, c) = m1 - m2 + m3 + m6;
    }
  }
}

}  // namespace

Result<DenseMatrix> StrassenMultiply(const DenseMatrix& a,
                                     const DenseMatrix& b,
                                     const StrassenOptions& options) {
  if (a.rows() != a.cols() || b.rows() != b.cols() || a.rows() != b.rows()) {
    return Status::InvalidArgument(
        "StrassenMultiply requires equal-size square matrices");
  }
  const size_t n = a.rows();
  if (n == 0) return DenseMatrix(0, 0);
  const size_t cutoff = std::max<size_t>(1, options.cutoff);
  const size_t padded = NextPowerOfTwo(n);

  std::vector<int64_t> pa(padded * padded, 0), pb(padded * padded, 0),
      pc(padded * padded, 0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      pa[r * padded + c] = a.At(r, c);
      pb[r * padded + c] = b.At(r, c);
    }
  }
  StrassenRecurse(Block{pa.data(), padded, padded},
                  Block{pb.data(), padded, padded},
                  MutBlock{pc.data(), padded, padded}, cutoff);

  DenseMatrix out(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) out.At(r, c) = pc[r * padded + c];
  }
  return out;
}

LinkMatrix ComputeLinksStrassen(const NeighborGraph& graph,
                                const StrassenOptions& options) {
  const size_t n = graph.size();
  DenseMatrix a = AdjacencyMatrix(graph);
  DenseMatrix squared = std::move(StrassenMultiply(a, a, options)).value();
  LinkMatrix links(n);
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      const int64_t c = squared.At(i, j);
      if (c > 0) links.Add(i, j, static_cast<LinkCount>(c));
    }
  }
  return links;
}

}  // namespace rock
