// librock — graph/neighbor_engine.h
//
// θ-pruned packed neighbor-graph engine. The scalar engines in neighbors.h /
// parallel.h evaluate all n²/2 pairs through a virtual per-pair call; this
// engine consumes a similarity's BatchSimilarity (similarity/batch.h) and
// cuts the work two independent ways while staying bit-identical to the
// scalar oracle at any thread count:
//
//   * window pruning — points sorted by set size; a pair (i, j) with sizes
//     s_min ≤ s_max can only reach sim ≥ θ when s_min/s_max ≥ θ (the §3.1
//     Jaccard length bound θ·|T_i| ≤ |T_j| ≤ |T_i|/θ, same bound the
//     labeler uses), so each point only scans a contiguous size window.
//     Surviving pairs are evaluated via the packed popcount kernel.
//   * inverted-index candidates — for θ > 0, sim(i, j) > 0 requires a
//     shared item, so a ScanCount pass over per-item postings enumerates
//     exactly the pairs with nonzero intersection; for plain set-Jaccard
//     the intersection count already determines the similarity.
//
// Both prunes are exact (see similarity/batch.h for the rounding argument),
// so the output NeighborGraph equals ComputeNeighbors(sim, theta) bit for
// bit. Pruning effectiveness is reported through the metrics registry:
// neighbors.pairs_evaluated + neighbors.pairs_pruned == n(n−1)/2 always.

#ifndef ROCK_GRAPH_NEIGHBOR_ENGINE_H_
#define ROCK_GRAPH_NEIGHBOR_ENGINE_H_

#include <cstddef>

#include "graph/neighbors.h"
#include "similarity/similarity.h"

namespace rock::diag {
class MetricsRegistry;
}  // namespace rock::diag

namespace rock {

/// Which pruning pass the packed engine runs.
enum class PackedStrategy {
  /// Pick per dataset: candidates when the estimated postings-scan work
  /// undercuts the windowed popcount sweep, window otherwise.
  kAuto,
  /// Size-sorted window + popcount sweep (always available).
  kWindow,
  /// Inverted-index ScanCount candidates (requires θ > 0 and an item view;
  /// silently degrades to the window pass otherwise).
  kCandidates,
};

/// Options for ComputeNeighborsPacked.
struct PackedNeighborOptions {
  /// Worker threads; 1 = serial, 0 = hardware concurrency. The result is
  /// bit-identical at any value.
  size_t num_threads = 1;
  /// Rows claimed per scheduling step (as ParallelOptions::row_chunk).
  size_t row_chunk = 16;
  /// Pruning pass selection; kAuto outside tests.
  PackedStrategy strategy = PackedStrategy::kAuto;
  /// Metrics sink (may be null): neighbors.pairs_evaluated,
  /// neighbors.pairs_pruned, neighbors.candidate_pass,
  /// neighbors.fallback_scalar, stage.neighbors.pack.
  diag::MetricsRegistry* metrics = nullptr;
};

/// Builds the θ-thresholded neighbor graph through the packed engine;
/// equals ComputeNeighbors(sim, theta) bit for bit. When the similarity has
/// no batch kernel (MakeBatch() == nullptr, e.g. expert-supplied
/// similarities or a packing over the memory budget), falls back to the
/// scalar engine and counts neighbors.fallback_scalar.
Result<NeighborGraph> ComputeNeighborsPacked(
    const PointSimilarity& sim, double theta,
    const PackedNeighborOptions& options = {});

}  // namespace rock

#endif  // ROCK_GRAPH_NEIGHBOR_ENGINE_H_
