// librock — graph/neighbor_engine.h
//
// θ-pruned packed neighbor-graph engine. The scalar engines in neighbors.h /
// parallel.h evaluate all n²/2 pairs through a virtual per-pair call; this
// engine consumes a similarity's BatchSimilarity (similarity/batch.h) and
// cuts the work two independent ways while staying bit-identical to the
// scalar oracle at any thread count:
//
//   * window pruning — points sorted by set size; a pair (i, j) with sizes
//     s_min ≤ s_max can only reach sim ≥ θ when s_min/s_max ≥ θ (the §3.1
//     Jaccard length bound θ·|T_i| ≤ |T_j| ≤ |T_i|/θ, same bound the
//     labeler uses), so each point only scans a contiguous size window.
//     Surviving pairs are evaluated via the packed popcount kernel.
//   * inverted-index candidates — for θ > 0, sim(i, j) > 0 requires a
//     shared item, so a ScanCount pass over per-item postings enumerates
//     exactly the pairs with nonzero intersection; for plain set-Jaccard
//     the intersection count already determines the similarity.
//
// Both prunes are exact (see similarity/batch.h for the rounding argument),
// so the output NeighborGraph equals ComputeNeighbors(sim, theta) bit for
// bit. Pruning effectiveness is reported through the metrics registry:
// neighbors.pairs_evaluated + neighbors.pairs_pruned == n(n−1)/2 always.
//
// A third, sub-quadratic pass exists for scale (paper §4.5's O(n²) wall):
//
//   * MinHash LSH banding (similarity/minhash.h) — per-row signatures,
//     banded bucket keys, and bucket co-membership generate candidate
//     pairs in ~O(n · signature) instead of touching all n²/2 pairs; every
//     candidate is then θ-verified by the same packed kernel, so precision
//     stays 1 by construction while recall follows the banding curve
//     1 − (1 − θ^r)^b (LshOptions; a recall-vs-oracle differential gate
//     lives in tools/perf_smoke.sh). The pass is approximate — it is only
//     ever selected when explicitly requested (kLsh) or permitted
//     (allow_lsh with kAuto) — and deterministic for a fixed LshOptions
//     seed at any thread count.

#ifndef ROCK_GRAPH_NEIGHBOR_ENGINE_H_
#define ROCK_GRAPH_NEIGHBOR_ENGINE_H_

#include <cstddef>

#include "graph/neighbors.h"
#include "similarity/minhash.h"
#include "similarity/similarity.h"

namespace rock::diag {
class MetricsRegistry;
}  // namespace rock::diag

namespace rock {

/// Which pruning pass the packed engine runs.
enum class PackedStrategy {
  /// Pick per dataset: candidates when the estimated postings-scan work
  /// undercuts the windowed popcount sweep, window otherwise. With
  /// PackedNeighborOptions::allow_lsh the cost model may also pick the
  /// LSH pass when the exact passes' estimated work dwarfs the signature
  /// build (see kLshAutoFactor).
  kAuto,
  /// Size-sorted window + popcount sweep (always available).
  kWindow,
  /// Inverted-index ScanCount candidates (requires θ > 0 and an item view;
  /// silently degrades to the window pass otherwise).
  kCandidates,
  /// MinHash LSH banding candidates + exact θ-verification (requires θ > 0
  /// and an item view; silently degrades to the window pass otherwise).
  /// Approximate: precision 1, recall ≈ LshCollisionProbability(θ).
  kLsh,
};

/// kAuto picks the LSH pass (when allowed) only if the cheapest exact
/// pass's estimated op count exceeds this multiple of the LSH estimate
/// (signature build + banding + expected dedup/verification mass, the
/// latter integrated over a deterministic similarity sample — n, density
/// and θ all enter). The margin makes the trade deliberately lopsided:
/// exactness is only given up when the model predicts a multiple-of-
/// kLshAutoFactor win, which on inverted-index-friendly data (small
/// universes, e.g. the Fig. 5 workload) means never — ScanCount already
/// enumerates only the non-zero pairs there. LSH takes over on wide
/// universes with heavy-hitter items, where Σ_item C(df, 2) explodes but
/// pairwise similarities stay low (bench_graph_scale measures both
/// regimes).
inline constexpr uint64_t kLshAutoFactor = 3;

/// Options for ComputeNeighborsPacked.
struct PackedNeighborOptions {
  /// Worker threads; 1 = serial, 0 = hardware concurrency. Exact passes
  /// are bit-identical at any value; the LSH pass is deterministic for a
  /// fixed lsh.seed at any value.
  size_t num_threads = 1;
  /// Rows claimed per scheduling step (as ParallelOptions::row_chunk).
  size_t row_chunk = 16;
  /// Pruning pass selection; kAuto outside tests.
  PackedStrategy strategy = PackedStrategy::kAuto;
  /// Banding parameters for the LSH pass (strategy kLsh, or kAuto with
  /// allow_lsh). Defaults target ≥ 99.9% pair recall at θ ≈ 0.73.
  LshOptions lsh;
  /// Lets kAuto trade exactness for the sub-quadratic LSH pass. Off by
  /// default so existing callers keep the bit-identical-to-oracle
  /// contract unless they opt in (RockOptions maps kAuto here).
  bool allow_lsh = false;
  /// Metrics sink (may be null): neighbors.pairs_evaluated,
  /// neighbors.pairs_pruned, neighbors.candidate_pass,
  /// neighbors.fallback_scalar, neighbors.lsh_pass,
  /// neighbors.lsh_candidates, neighbors.lsh_skipped_empty, graph.threads,
  /// stage.neighbors.pack.
  diag::MetricsRegistry* metrics = nullptr;
};

/// Builds the θ-thresholded neighbor graph through the packed engine;
/// equals ComputeNeighbors(sim, theta) bit for bit under the exact passes.
/// Under the LSH pass the graph is a subgraph of the oracle (precision 1,
/// recall per LshOptions), deterministic for a fixed seed at any thread
/// count. When the similarity has no batch kernel (MakeBatch() == nullptr,
/// e.g. expert-supplied similarities or a packing over the memory budget),
/// falls back to the scalar engine and counts neighbors.fallback_scalar.
Result<NeighborGraph> ComputeNeighborsPacked(
    const PointSimilarity& sim, double theta,
    const PackedNeighborOptions& options = {});

}  // namespace rock

#endif  // ROCK_GRAPH_NEIGHBOR_ENGINE_H_
