#include "graph/parallel.h"

#include <algorithm>
#include <array>
#include <atomic>

#include "util/thread_pool.h"

namespace rock {

Result<NeighborGraph> ComputeNeighborsParallel(const PointSimilarity& sim,
                                               double theta,
                                               const ParallelOptions& options) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  const size_t n = sim.size();
  const size_t num_threads = ResolveThreads(options.num_threads);

  // Per-worker edge buffers; (i, j) with i < j.
  std::vector<std::vector<std::pair<PointIndex, PointIndex>>> edges(
      std::max<size_t>(num_threads, 1));
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    auto& local = edges[worker];
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t i = begin; i < end; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
          if (sim.Similarity(i, j) >= theta) {
            local.emplace_back(static_cast<PointIndex>(i),
                               static_cast<PointIndex>(j));
          }
        }
      }
    }
  });

  // Scatter: count degrees, reserve, fill, sort rows.
  NeighborGraph graph;
  graph.nbrlist.resize(n);
  std::vector<size_t> degree(n, 0);
  for (const auto& local : edges) {
    for (const auto& [i, j] : local) {
      ++degree[i];
      ++degree[j];
    }
  }
  for (size_t i = 0; i < n; ++i) graph.nbrlist[i].reserve(degree[i]);
  for (const auto& local : edges) {
    for (const auto& [i, j] : local) {
      graph.nbrlist[i].push_back(j);
      graph.nbrlist[j].push_back(i);
    }
  }
  for (auto& l : graph.nbrlist) std::sort(l.begin(), l.end());
  return graph;
}

void SortUniqueParallel(std::vector<uint64_t>* keys, size_t num_threads) {
  num_threads = ResolveThreads(num_threads);
  const size_t n = keys->size();
  // Below ~64k keys the fork-join overhead beats the sort it would shard.
  if (num_threads <= 1 || n < (size_t{1} << 16)) {
    std::sort(keys->begin(), keys->end());
    keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
    return;
  }

  // Near-equal segments, sorted in parallel.
  std::vector<size_t> bounds(num_threads + 1);
  for (size_t t = 0; t <= num_threads; ++t) bounds[t] = n * t / num_threads;
  ParallelInvoke(num_threads, [&](size_t t) {
    std::sort(keys->begin() + static_cast<ptrdiff_t>(bounds[t]),
              keys->begin() + static_cast<ptrdiff_t>(bounds[t + 1]));
  });

  // Merge ladder: segment width doubles per round, each merge claimed by
  // one worker. The final sorted order is independent of scheduling.
  for (size_t width = 1; width < num_threads; width *= 2) {
    std::vector<std::array<size_t, 3>> merges;  // {lo, mid, hi}
    for (size_t t = 0; t + width < num_threads; t += 2 * width) {
      merges.push_back({bounds[t], bounds[t + width],
                        bounds[std::min(t + 2 * width, num_threads)]});
    }
    std::atomic<size_t> next{0};
    ParallelInvoke(std::min(num_threads, merges.size()), [&](size_t) {
      while (true) {
        const size_t m = next.fetch_add(1);
        if (m >= merges.size()) break;
        const auto [lo, mid, hi] = merges[m];
        std::inplace_merge(keys->begin() + static_cast<ptrdiff_t>(lo),
                           keys->begin() + static_cast<ptrdiff_t>(mid),
                           keys->begin() + static_cast<ptrdiff_t>(hi));
      }
    });
  }
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

LinkMatrix ComputeLinksParallel(const NeighborGraph& graph,
                                const ParallelOptions& options) {
  const size_t n = graph.size();
  LinkMatrix links(n);
  if (n < 2) return links;
  const size_t num_threads = ResolveThreads(options.num_threads);

  // Row offsets into the upper-triangular array: cell (a, b), a < b, lives
  // at offset(a) + b (offset computed modularly; see links.cc).
  auto row_offset = [n](size_t a) {
    return a * n - a * (a + 1) / 2 - a - 1;
  };

  // Pass 1: writes per row a — for each point i and each position j in its
  // sorted neighbor list, the pair loop writes (m_i − j − 1) cells in row
  // nbrs[j].
  std::vector<uint64_t> writes(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto& nbrs = graph.nbrlist[i];
    for (size_t j = 0; j + 1 < nbrs.size(); ++j) {
      writes[nbrs[j]] += nbrs.size() - j - 1;
    }
  }
  uint64_t total_writes = 0;
  for (uint64_t w : writes) total_writes += w;

  // Partition rows into contiguous ranges of ~equal write volume.
  std::vector<size_t> range_begin;
  range_begin.push_back(0);
  if (num_threads > 1 && total_writes > 0) {
    uint64_t acc = 0;
    size_t next_cut = 1;
    for (size_t a = 0; a < n && next_cut < num_threads; ++a) {
      acc += writes[a];
      if (acc * num_threads >= total_writes * next_cut) {
        range_begin.push_back(a + 1);
        ++next_cut;
      }
    }
  }
  while (range_begin.size() < num_threads) range_begin.push_back(n);
  range_begin.push_back(n);

  std::vector<LinkCount> tri(n * (n - 1) / 2, 0);
  ParallelInvoke(num_threads, [&](size_t worker) {
    const size_t lo = range_begin[worker];
    const size_t hi = range_begin[worker + 1];
    if (lo >= hi) return;
    const auto lo_p = static_cast<PointIndex>(lo);
    const auto hi_p = static_cast<PointIndex>(hi);
    for (size_t i = 0; i < n; ++i) {
      const auto& nbrs = graph.nbrlist[i];
      if (nbrs.size() < 2) continue;
      // Sorted list → the j positions whose row falls in [lo, hi) form a
      // contiguous segment.
      const auto seg_begin =
          std::lower_bound(nbrs.begin(), nbrs.end(), lo_p);
      const auto seg_end = std::lower_bound(seg_begin, nbrs.end(), hi_p);
      for (auto it = seg_begin; it != seg_end; ++it) {
        if (it + 1 == nbrs.end()) break;
        const size_t off = row_offset(*it);
        for (auto lt = it + 1; lt != nbrs.end(); ++lt) {
          ++tri[off + *lt];
        }
      }
    }
  });

  // Convert to the sparse representation (single-threaded, O(n²) scan).
  for (size_t a = 0; a + 1 < n; ++a) {
    const size_t off = row_offset(a);
    for (size_t b = a + 1; b < n; ++b) {
      if (tri[off + b] > 0) {
        links.Add(static_cast<PointIndex>(a), static_cast<PointIndex>(b),
                  tri[off + b]);
      }
    }
  }
  return links;
}

}  // namespace rock
