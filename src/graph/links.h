// librock — graph/links.h
//
// Link computation (paper §3.2 / Fig. 4): link(p_i, p_j) = number of common
// neighbors of p_i and p_j = number of length-2 neighbor paths between them.
// The sparse algorithm iterates each point's neighbor list and credits one
// link to every pair of its neighbors — O(Σ m_i²) time, far cheaper than
// squaring the n×n adjacency matrix when the graph is sparse (§4.4).
//
// Storage is two-layered: per-row hash maps absorb the incremental,
// unordered Add() stream during counting, and Freeze() then lays the same
// data out as a CSR-style flat structure (one offset array, one sorted
// partner array, one parallel count array) for the merge engine's
// sequential row scans. The hash rows stay alive behind the same API and
// serve as the oracle for the flat layout in tests and invariant checks.
//
// The packed link engine (graph/link_engine.h) builds the CSR layout
// directly via FromCsr(); such matrices start frozen with empty hash rows,
// which materialize lazily from the CSR arrays on the first call that needs
// them (Row(), Add(), AddDirected()). Either construction order yields the
// same observable matrix.

#ifndef ROCK_GRAPH_LINKS_H_
#define ROCK_GRAPH_LINKS_H_

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/neighbors.h"

namespace rock {

/// Number of common neighbors between a pair of points/clusters.
using LinkCount = uint32_t;

/// One frozen (CSR) row of a LinkMatrix: `size` partners in strictly
/// ascending order with their link counts in the parallel array.
struct LinkRowSpan {
  const PointIndex* partners = nullptr;
  const LinkCount* counts = nullptr;
  size_t size = 0;
};

/// Symmetric sparse matrix of link counts. Rows store only non-zero
/// entries; both (i, j) and (j, i) are represented so that row iteration
/// sees every partner of a point.
class LinkMatrix {
 public:
  /// Creates an all-zero n×n link matrix.
  explicit LinkMatrix(size_t n) : rows_(n) {}

  /// Adopts a prebuilt CSR layout (row i spans [offsets[i], offsets[i+1])
  /// of the partner/count arrays; partners strictly ascending per row, both
  /// (i, j) and (j, i) present). The matrix starts frozen; hash rows
  /// materialize lazily. Offsets must have n + 1 entries and the arrays
  /// equal lengths.
  static LinkMatrix FromCsr(size_t n, std::vector<size_t> offsets,
                            std::vector<PointIndex> partners,
                            std::vector<LinkCount> counts);

  /// Number of points n.
  size_t size() const { return rows_.size(); }

  /// link(i, j); zero if no entry. i == j returns 0 by convention.
  LinkCount Count(PointIndex i, PointIndex j) const;

  /// Adds `delta` to link(i, j) (and symmetrically link(j, i)). Diagonal
  /// adds (i == j) are ignored: a point has no links to itself, and the
  /// symmetric double-write would otherwise corrupt the cell with 2·delta.
  /// Invalidates a previous Freeze().
  void Add(PointIndex i, PointIndex j, LinkCount delta);

  /// Writes only row i — deliberately breaking the symmetry/diagonal
  /// invariants. For tests and the diag oracles (diag/invariants.h), which
  /// need corrupted matrices to prove the checkers fire; never called by
  /// the clustering code. Invalidates a previous Freeze().
  void AddDirected(PointIndex i, PointIndex j, LinkCount delta);

  /// Non-zero entries of row i: partner → count. Materializes the hash
  /// rows from the CSR arrays on a FromCsr-built matrix.
  const std::unordered_map<PointIndex, LinkCount>& Row(PointIndex i) const {
    EnsureHashRows();
    return rows_[i];
  }

  /// Forces lazy hash rows into existence on a FromCsr-built matrix
  /// (no-op otherwise). Row() does this implicitly; callers that want the
  /// materialization cost charged to a specific stage call it up front.
  void MaterializeHashRows() const { EnsureHashRows(); }

  /// Builds the CSR flat layout (sorted partner/count arrays plus a row
  /// offset array) from the hash rows. Idempotent; O(Σ rowᵢ log rowᵢ).
  /// Any later Add()/AddDirected() drops the flat arrays again, so
  /// incremental construction and frozen iteration cannot be interleaved
  /// by accident.
  void Freeze();

  /// True once Freeze() has run and no Add has invalidated it.
  bool frozen() const { return frozen_; }

  /// Row i of the CSR layout, partners strictly ascending. Requires
  /// frozen().
  LinkRowSpan FlatRow(PointIndex i) const {
    assert(frozen_);
    const size_t begin = csr_offsets_[i];
    const size_t end = csr_offsets_[i + 1];
    return LinkRowSpan{csr_partners_.data() + begin,
                       csr_counts_.data() + begin, end - begin};
  }

  /// Number of stored non-zero unordered pairs.
  size_t NumNonZeroPairs() const;

  /// Sum of link counts over all unordered pairs.
  uint64_t TotalLinks() const;

 private:
  /// Drops the flat arrays when a mutation invalidates them. Callers
  /// materialize the hash rows first — they become the only copy.
  void Thaw();

  /// Fills empty hash rows from the CSR arrays (FromCsr construction).
  /// Invariant: rows_valid_ || frozen_, so the data always exists somewhere.
  void EnsureHashRows() const;

  // Hash rows; mutable so a logically-const read can materialize them from
  // the CSR arrays. rows_valid_ is false only between FromCsr() and the
  // first materialization.
  mutable std::vector<std::unordered_map<PointIndex, LinkCount>> rows_;
  mutable bool rows_valid_ = true;

  // CSR flat layout, valid only while frozen_: row i spans
  // [csr_offsets_[i], csr_offsets_[i+1]) of the partner/count arrays.
  bool frozen_ = false;
  std::vector<size_t> csr_offsets_;
  std::vector<PointIndex> csr_partners_;
  std::vector<LinkCount> csr_counts_;
};

/// Computes all pairwise link counts from the neighbor graph using the
/// pair-counting algorithm of paper Fig. 4. The O(Σ m_i²) pair updates hit
/// either per-row hash maps (sparse, scales to any n) or — when the
/// triangular count array fits in `dense_budget_bytes` — a flat dense
/// accumulator that is ~10× faster per update and is converted to the
/// sparse representation at the end. Results are identical.
struct ComputeLinksOptions {
  /// Dense accumulation is used when n(n−1)/2 · 4 bytes fits this budget.
  size_t dense_budget_bytes = 256ull << 20;
};

LinkMatrix ComputeLinks(const NeighborGraph& graph,
                        const ComputeLinksOptions& options = {});

/// Reference O(n² · m) implementation that intersects neighbor lists for
/// every pair. Used as a test oracle for ComputeLinks and the dense path.
LinkMatrix ComputeLinksBruteForce(const NeighborGraph& graph);

}  // namespace rock

#endif  // ROCK_GRAPH_LINKS_H_
