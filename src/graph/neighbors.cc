#include "graph/neighbors.h"

#include <algorithm>

namespace rock {

bool NeighborGraph::AreNeighbors(PointIndex i, PointIndex j) const {
  const auto& list = nbrlist[i];
  return std::binary_search(list.begin(), list.end(), j);
}

double NeighborGraph::AverageDegree() const {
  if (nbrlist.empty()) return 0.0;
  size_t total = 0;
  for (const auto& l : nbrlist) total += l.size();
  return static_cast<double>(total) / static_cast<double>(nbrlist.size());
}

size_t NeighborGraph::MaxDegree() const {
  size_t best = 0;
  for (const auto& l : nbrlist) best = std::max(best, l.size());
  return best;
}

size_t NeighborGraph::NumEdges() const {
  size_t total = 0;
  for (const auto& l : nbrlist) total += l.size();
  return total / 2;
}

Result<NeighborGraph> ComputeNeighbors(const PointSimilarity& sim,
                                       double theta) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  const size_t n = sim.size();
  NeighborGraph graph;
  graph.nbrlist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (sim.Similarity(i, j) >= theta) {
        graph.nbrlist[i].push_back(static_cast<PointIndex>(j));
        graph.nbrlist[j].push_back(static_cast<PointIndex>(i));
      }
    }
  }
  // Rows i receive j > i in order, but j < i arrive out of order; sort for
  // the binary-search contract.
  for (auto& l : graph.nbrlist) std::sort(l.begin(), l.end());
  return graph;
}

Result<NeighborGraph> ComputeNeighborsForSubset(
    const PointSimilarity& sim, const std::vector<size_t>& subset,
    double theta) {
  if (!(theta >= 0.0 && theta <= 1.0)) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  const size_t n = subset.size();
  for (size_t idx : subset) {
    if (idx >= sim.size()) {
      return Status::OutOfRange("subset index exceeds similarity size");
    }
  }
  NeighborGraph graph;
  graph.nbrlist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (sim.Similarity(subset[i], subset[j]) >= theta) {
        graph.nbrlist[i].push_back(static_cast<PointIndex>(j));
        graph.nbrlist[j].push_back(static_cast<PointIndex>(i));
      }
    }
  }
  for (auto& l : graph.nbrlist) std::sort(l.begin(), l.end());
  return graph;
}

}  // namespace rock
