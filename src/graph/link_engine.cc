#include "graph/link_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/parallel.h"
#include "util/thread_pool.h"

namespace rock {
namespace {

/// Upper-triangular slice of one row: (partner q > p, link count) in
/// ascending partner order.
using UpperRow = std::vector<std::pair<PointIndex, LinkCount>>;

/// Budget miss: run the Fig. 4 hashed scatter (the oracle path) and freeze
/// it, so the caller still gets the frozen-CSR contract.
LinkMatrix FallbackHashed(const NeighborGraph& graph,
                          const PackedLinkOptions& options) {
  diag::AddCounter(options.metrics, "links.fallback_hashed", 1);
  LinkMatrix links =
      options.num_threads == 1
          ? ComputeLinks(graph)
          : ComputeLinksParallel(graph,
                                 {options.num_threads, options.row_chunk});
  links.Freeze();
  diag::AddCounter(options.metrics, "links.candidate_pairs", 0);
  diag::AddCounter(options.metrics, "links.pairs_counted",
                   links.NumNonZeroPairs());
  return links;
}

/// Serial mirror + CSR assembly shared by both counting passes. Row r
/// receives its mirrored partners p < r while the outer loop passes
/// p = 0..r−1 (ascending) and then its own upper partners q > r
/// (ascending), so every row comes out strictly ascending — the exact
/// layout LinkMatrix::Freeze() produces.
LinkMatrix AssembleFromUpper(size_t n, const std::vector<UpperRow>& upper) {
  std::vector<size_t> sizes(n, 0);
  for (size_t p = 0; p < n; ++p) {
    sizes[p] += upper[p].size();
    for (const auto& [q, c] : upper[p]) ++sizes[q];
  }
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t p = 0; p < n; ++p) offsets[p + 1] = offsets[p] + sizes[p];
  std::vector<PointIndex> partners(offsets[n]);
  std::vector<LinkCount> counts(offsets[n]);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t p = 0; p < n; ++p) {
    for (const auto& [q, c] : upper[p]) {
      partners[cursor[p]] = q;
      counts[cursor[p]] = c;
      ++cursor[p];
      partners[cursor[q]] = static_cast<PointIndex>(p);
      counts[cursor[q]] = c;
      ++cursor[q];
    }
  }
  return LinkMatrix::FromCsr(n, std::move(offsets), std::move(partners),
                             std::move(counts));
}

/// Dense ScanCount pass: for each row p, every neighbor i's adjacency
/// suffix beyond p is scattered into a per-worker count array — count[q]
/// ends at |N(p) ∩ N(q)| because each shared neighbor contributes exactly
/// one increment — while a ⌈n/64⌉-word bitmap records first touches. The
/// bitmap sweep then emits the row's partners in ascending order and
/// resets both scratch structures. Row outputs depend only on the graph,
/// so any schedule produces the same upper rows.
LinkMatrix ScatterPass(const NeighborGraph& graph,
                       const PackedLinkOptions& options) {
  const size_t n = graph.size();
  const size_t words = (n + 63) / 64;
  const size_t num_threads = ResolveThreads(options.num_threads);
  diag::AddCounter(options.metrics, "links.scatter_pass", 1);
  std::vector<UpperRow> upper(n);
  std::vector<uint64_t> found(std::max<size_t>(num_threads, 1), 0);
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    std::vector<LinkCount> count(n, 0);
    std::vector<uint64_t> touched(words, 0);
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t p = begin; p < end; ++p) {
        const auto& nbrs = graph.nbrlist[p];
        if (nbrs.empty()) continue;
        const auto pi = static_cast<PointIndex>(p);
        for (const PointIndex i : nbrs) {
          const auto& ni = graph.nbrlist[i];
          // Partners q > p form a suffix of the ascending adjacency list.
          for (auto it = std::upper_bound(ni.begin(), ni.end(), pi);
               it != ni.end(); ++it) {
            const size_t q = *it;
            ++count[q];
            touched[q >> 6] |= uint64_t{1} << (q & 63);
          }
        }
        UpperRow& out = upper[p];
        for (size_t w = p >> 6; w < words; ++w) {
          uint64_t bits = touched[w];
          touched[w] = 0;
          while (bits != 0) {
            const auto q = static_cast<PointIndex>(
                (w << 6) + static_cast<size_t>(std::countr_zero(bits)));
            bits &= bits - 1;
            out.emplace_back(q, count[q]);
            count[q] = 0;
          }
        }
        found[worker] += out.size();
      }
    }
  });
  uint64_t candidates = 0;
  for (const uint64_t f : found) candidates += f;
  diag::AddCounter(options.metrics, "links.candidate_pairs", candidates);
  diag::AddCounter(options.metrics, "links.pairs_counted", candidates);
  return AssembleFromUpper(n, upper);
}

}  // namespace

LinkMatrix ComputeLinksPacked(const NeighborGraph& graph,
                              const PackedLinkOptions& options) {
  const size_t n = graph.size();
  if (n < 2) {
    LinkMatrix links(n);
    links.Freeze();
    diag::AddCounter(options.metrics, "links.candidate_pairs", 0);
    diag::AddCounter(options.metrics, "links.pairs_counted", 0);
    return links;
  }
  const size_t words = (n + 63) / 64;

  PackedLinkStrategy strategy = options.strategy;
  if (strategy == PackedLinkStrategy::kAuto) {
    // Scatter iff its exact total increment count undercuts the plane's
    // OR-mask word reads alone — a certain win, and a data-only choice, so
    // the decision (and every links.* metric) is identical at any thread
    // count.
    uint64_t scatter_ops = 0;
    uint64_t degree_sum = 0;
    for (const auto& nbrs : graph.nbrlist) {
      const auto m = static_cast<uint64_t>(nbrs.size());
      scatter_ops += m * (m - (m > 0 ? 1 : 0)) / 2;
      degree_sum += m;
    }
    strategy = scatter_ops < degree_sum * words
                   ? PackedLinkStrategy::kScatter
                   : PackedLinkStrategy::kPlane;
  }
  if (strategy == PackedLinkStrategy::kScatter) {
    return ScatterPass(graph, options);
  }
  if (words > options.pack_budget_bytes / sizeof(uint64_t) / n) {
    return FallbackHashed(graph, options);
  }

  // Plane: row i holds N(i) as an n-bit set. Rows are the adjacency matrix
  // rows, so popcount(row_p AND row_q) = |N(p) ∩ N(q)| = link(p, q).
  // Rows write disjoint plane segments, so packing shards cleanly.
  std::vector<uint64_t> plane;
  {
    diag::ScopedTimer pack_timer(options.metrics, "stage.links.pack");
    plane.assign(n * words, 0);
    ParallelChunks(options.num_threads, n,
                   std::max<size_t>(1, options.row_chunk),
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       uint64_t* row = plane.data() + i * words;
                       for (const PointIndex q : graph.nbrlist[i]) {
                         row[q >> 6] |= uint64_t{1} << (q & 63);
                       }
                     }
                   });
  }

  // Per-row pass over the upper triangle. Candidates q > p are the set bits
  // of OR_{i ∈ N(p)} row_i restricted to the suffix beyond p — each such q
  // shares the witness neighbor i with p, so its link count is ≥ 1 and the
  // popcount sweep is never wasted. Each row's output depends only on the
  // graph, so any thread schedule produces the same upper rows.
  const size_t num_threads = ResolveThreads(options.num_threads);
  std::vector<UpperRow> upper(n);
  std::vector<uint64_t> found(std::max<size_t>(num_threads, 1), 0);
  std::atomic<size_t> next{0};
  const size_t chunk = std::max<size_t>(1, options.row_chunk);
  ParallelInvoke(num_threads, [&](size_t worker) {
    std::vector<uint64_t> mask(words, 0);
    while (true) {
      const size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const size_t end = std::min(begin + chunk, n);
      for (size_t p = begin; p < end; ++p) {
        const auto& nbrs = graph.nbrlist[p];
        if (nbrs.empty()) continue;
        const size_t wp = p >> 6;
        for (const PointIndex i : nbrs) {
          const uint64_t* row = plane.data() + size_t{i} * words;
          for (size_t w = wp; w < words; ++w) mask[w] |= row[w];
        }
        // Drop bits ≤ p from the first word: candidates must exceed p.
        // (For p ≡ 63 mod 64 the mask value wraps to 0 and clears the whole
        // word — unsigned wrap-around, well defined.)
        mask[wp] &= ~((uint64_t{2} << (p & 63)) - 1);
        const uint64_t* row_p = plane.data() + p * words;
        UpperRow& out = upper[p];
        for (size_t w = wp; w < words; ++w) {
          uint64_t bits = mask[w];
          mask[w] = 0;  // leave the scratch mask clean for the next row
          while (bits != 0) {
            const auto q = static_cast<PointIndex>(
                (w << 6) + static_cast<size_t>(std::countr_zero(bits)));
            bits &= bits - 1;
            const uint64_t common = IntersectPopcount(
                row_p, plane.data() + size_t{q} * words, words);
            out.emplace_back(q, static_cast<LinkCount>(common));
          }
        }
        found[worker] += out.size();
      }
    }
  });
  plane.clear();
  plane.shrink_to_fit();

  uint64_t candidates = 0;
  for (const uint64_t f : found) candidates += f;
  diag::AddCounter(options.metrics, "links.candidate_pairs", candidates);
  // Enumeration is exact (every candidate stores a non-zero count), so the
  // two counters agree on this path; they differ only on the fallback.
  diag::AddCounter(options.metrics, "links.pairs_counted", candidates);

  return AssembleFromUpper(n, upper);
}

}  // namespace rock
