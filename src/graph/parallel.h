// librock — graph/parallel.h
//
// Multithreaded versions of the two O(n²)-ish phases that dominate ROCK's
// runtime (paper §4.5 / Fig. 5): neighbor-graph construction (n²/2
// similarity evaluations) and link computation (Σ mᵢ² pair updates).
// Results are bit-identical to the serial ComputeNeighbors / ComputeLinks.
//
// Parallelization strategy:
//   * neighbors — workers claim dynamic chunks of rows i and evaluate
//     sim(i, j) for j > i into per-worker edge buffers; buffers are
//     scattered into the final adjacency lists single-threaded (cheap,
//     O(edges)).
//   * links — the upper-triangular count array is partitioned into
//     contiguous row ranges balanced by a precomputed per-row write count;
//     every worker scans all neighbor lists but only touches its own rows,
//     so no synchronization is needed on the hot path.

#ifndef ROCK_GRAPH_PARALLEL_H_
#define ROCK_GRAPH_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "graph/links.h"
#include "graph/neighbors.h"
#include "similarity/similarity.h"

namespace rock {

/// Options for the parallel graph algorithms.
struct ParallelOptions {
  /// Worker threads; 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Rows claimed per scheduling step in neighbor construction.
  size_t row_chunk = 16;
};

/// Parallel thresholded neighbor graph; equals ComputeNeighbors(sim, theta).
Result<NeighborGraph> ComputeNeighborsParallel(
    const PointSimilarity& sim, double theta,
    const ParallelOptions& options = {});

/// Parallel Fig. 4 link counting; equals ComputeLinks(graph).
/// Uses a single dense upper-triangular accumulator (n(n−1)/2 counts), so
/// memory is the same as the serial dense path regardless of thread count.
LinkMatrix ComputeLinksParallel(const NeighborGraph& graph,
                                const ParallelOptions& options = {});

/// Sorts `keys` ascending and drops duplicates, sharded over `num_threads`
/// workers (segment sorts in parallel, then a serial merge ladder). The
/// result is the sorted unique multiset — identical at any thread count —
/// which is what the LSH candidate dedup in the packed neighbor engine
/// relies on for its determinism contract.
void SortUniqueParallel(std::vector<uint64_t>* keys, size_t num_threads);

}  // namespace rock

#endif  // ROCK_GRAPH_PARALLEL_H_
