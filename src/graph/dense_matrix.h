// librock — graph/dense_matrix.h
//
// Dense-matrix view of link computation (paper §4.4): with adjacency matrix
// A (A[i][j] = 1 iff i, j are neighbors), the link counts are the entries of
// A·A. librock ships the naive O(n³) product and Strassen's O(n^2.81)
// algorithm (strassen.h) both as a fidelity exercise and as oracles against
// the sparse Fig. 4 algorithm. (Coppersmith–Winograd, which the paper cites
// for the O(n^2.37) bound, is galactic and deliberately not implemented.)

#ifndef ROCK_GRAPH_DENSE_MATRIX_H_
#define ROCK_GRAPH_DENSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/links.h"
#include "graph/neighbors.h"

namespace rock {

/// Row-major dense square-capable matrix of 64-bit signed integers
/// (signed so Strassen's subtractive intermediates are representable).
class DenseMatrix {
 public:
  /// rows×cols zero matrix.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  int64_t& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  int64_t At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  bool operator==(const DenseMatrix& other) const = default;

  /// Naive O(r·c·k) product; this->cols() must equal other.rows().
  Result<DenseMatrix> Multiply(const DenseMatrix& other) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<int64_t> data_;
};

/// Builds the 0/1 adjacency matrix of a neighbor graph.
DenseMatrix AdjacencyMatrix(const NeighborGraph& graph);

/// Computes links by squaring the adjacency matrix (naive product) and
/// zeroing the diagonal. Matches ComputeLinks exactly.
LinkMatrix ComputeLinksDense(const NeighborGraph& graph);

}  // namespace rock

#endif  // ROCK_GRAPH_DENSE_MATRIX_H_
