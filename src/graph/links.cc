#include "graph/links.h"

#include <algorithm>

namespace rock {

LinkMatrix LinkMatrix::FromCsr(size_t n, std::vector<size_t> offsets,
                               std::vector<PointIndex> partners,
                               std::vector<LinkCount> counts) {
  assert(offsets.size() == n + 1);
  assert(offsets.empty() || offsets.back() == partners.size());
  assert(partners.size() == counts.size());
  LinkMatrix m(n);
  m.frozen_ = true;
  m.rows_valid_ = false;
  m.csr_offsets_ = std::move(offsets);
  m.csr_partners_ = std::move(partners);
  m.csr_counts_ = std::move(counts);
  return m;
}

void LinkMatrix::EnsureHashRows() const {
  if (rows_valid_) return;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const size_t begin = csr_offsets_[i];
    const size_t end = csr_offsets_[i + 1];
    auto& row = rows_[i];
    row.reserve(end - begin);
    for (size_t e = begin; e < end; ++e) {
      row.emplace(csr_partners_[e], csr_counts_[e]);
    }
  }
  rows_valid_ = true;
}

LinkCount LinkMatrix::Count(PointIndex i, PointIndex j) const {
  if (i == j) return 0;
  if (frozen_) {
    // The CSR arrays are authoritative while frozen; binary search keeps
    // queries from materializing lazy hash rows.
    const size_t begin = csr_offsets_[i];
    const size_t end = csr_offsets_[i + 1];
    const PointIndex* lo = csr_partners_.data() + begin;
    const PointIndex* hi = csr_partners_.data() + end;
    const PointIndex* it = std::lower_bound(lo, hi, j);
    if (it == hi || *it != j) return 0;
    return csr_counts_[begin + static_cast<size_t>(it - lo)];
  }
  const auto& row = rows_[i];
  auto it = row.find(j);
  return it == row.end() ? 0 : it->second;
}

void LinkMatrix::Add(PointIndex i, PointIndex j, LinkCount delta) {
  // A point has no links to itself (Count(i, i) == 0 by convention).
  // Without this guard the two symmetric writes below would both hit the
  // same diagonal cell and store 2·delta of garbage.
  if (i == j) return;
  EnsureHashRows();
  Thaw();
  rows_[i][j] += delta;
  rows_[j][i] += delta;
}

void LinkMatrix::AddDirected(PointIndex i, PointIndex j, LinkCount delta) {
  EnsureHashRows();
  Thaw();
  rows_[i][j] += delta;
}

void LinkMatrix::Thaw() {
  if (!frozen_) return;
  frozen_ = false;
  csr_offsets_.clear();
  csr_offsets_.shrink_to_fit();
  csr_partners_.clear();
  csr_partners_.shrink_to_fit();
  csr_counts_.clear();
  csr_counts_.shrink_to_fit();
}

void LinkMatrix::Freeze() {
  if (frozen_) return;
  size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  csr_offsets_.assign(rows_.size() + 1, 0);
  csr_partners_.clear();
  csr_partners_.reserve(total);
  csr_counts_.clear();
  csr_counts_.reserve(total);
  std::vector<std::pair<PointIndex, LinkCount>> entries;
  for (size_t i = 0; i < rows_.size(); ++i) {
    entries.assign(rows_[i].begin(), rows_[i].end());
    std::sort(entries.begin(), entries.end());
    for (const auto& [j, count] : entries) {
      csr_partners_.push_back(j);
      csr_counts_.push_back(count);
    }
    csr_offsets_[i + 1] = csr_partners_.size();
  }
  frozen_ = true;
}

size_t LinkMatrix::NumNonZeroPairs() const {
  if (frozen_) return csr_partners_.size() / 2;
  size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  return total / 2;
}

uint64_t LinkMatrix::TotalLinks() const {
  if (frozen_) {
    uint64_t total = 0;
    for (const LinkCount count : csr_counts_) total += count;
    return total / 2;
  }
  uint64_t total = 0;
  for (const auto& row : rows_) {
    for (const auto& [_, count] : row) total += count;
  }
  return total / 2;
}

namespace {

/// Fig. 4 with per-row hash maps — works at any scale.
LinkMatrix ComputeLinksSparse(const NeighborGraph& graph) {
  const size_t n = graph.size();
  LinkMatrix links(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& nbrs = graph.nbrlist[i];
    for (size_t j = 0; j + 1 < nbrs.size(); ++j) {
      for (size_t l = j + 1; l < nbrs.size(); ++l) {
        links.Add(nbrs[j], nbrs[l], 1);
      }
    }
  }
  return links;
}

/// Fig. 4 with a flat upper-triangular count array. Neighbor lists are
/// sorted, so for a < b the cell index is a·n − a(a+1)/2 + (b − a − 1).
LinkMatrix ComputeLinksDenseAccumulate(const NeighborGraph& graph) {
  const size_t n = graph.size();
  LinkMatrix links(n);
  if (n < 2) return links;
  std::vector<LinkCount> tri(n * (n - 1) / 2, 0);
  // Cell (a, b), a < b, lives at offset(a) + b where offset(a) is computed
  // in modular size_t arithmetic (it is "base − a − 1", which underflows
  // for a = 0 but re-wraps correctly when b is added).
  auto row_offset = [n](size_t a) {
    return a * n - a * (a + 1) / 2 - a - 1;
  };
  for (size_t i = 0; i < n; ++i) {
    const auto& nbrs = graph.nbrlist[i];
    for (size_t j = 0; j + 1 < nbrs.size(); ++j) {
      // nbrs is sorted, so nbrs[j] < nbrs[l] for l > j.
      const size_t off = row_offset(nbrs[j]);
      for (size_t l = j + 1; l < nbrs.size(); ++l) {
        ++tri[off + nbrs[l]];
      }
    }
  }
  for (size_t a = 0; a + 1 < n; ++a) {
    const size_t off = row_offset(a);
    for (size_t b = a + 1; b < n; ++b) {
      if (tri[off + b] > 0) {
        links.Add(static_cast<PointIndex>(a), static_cast<PointIndex>(b),
                  tri[off + b]);
      }
    }
  }
  return links;
}

}  // namespace

LinkMatrix ComputeLinks(const NeighborGraph& graph,
                        const ComputeLinksOptions& options) {
  const size_t n = graph.size();
  if (n >= 2 &&
      (n * (n - 1) / 2) * sizeof(LinkCount) <= options.dense_budget_bytes) {
    return ComputeLinksDenseAccumulate(graph);
  }
  return ComputeLinksSparse(graph);
}

LinkMatrix ComputeLinksBruteForce(const NeighborGraph& graph) {
  const size_t n = graph.size();
  LinkMatrix links(n);
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = i + 1; j < n; ++j) {
      const auto& a = graph.nbrlist[i];
      const auto& b = graph.nbrlist[j];
      // Sorted-list intersection size = |N(i) ∩ N(j)| = link(i, j).
      size_t common = 0;
      auto ia = a.begin();
      auto ib = b.begin();
      while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib) {
          ++ia;
        } else if (*ib < *ia) {
          ++ib;
        } else {
          ++common;
          ++ia;
          ++ib;
        }
      }
      if (common > 0) links.Add(i, j, static_cast<LinkCount>(common));
    }
  }
  return links;
}

}  // namespace rock
