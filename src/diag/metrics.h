// librock — diag/metrics.h
//
// Lightweight run-scoped observability: named counters, gauges and wall-time
// timers collected while a pipeline executes, snapshotted into a RunMetrics
// value the caller can inspect or serialize. ROCK's cost model (paper §4.5 /
// Fig. 5) is dominated by neighbor construction and link counting, so every
// stage records its wall time plus allocation-proxy counters (edges, non-zero
// link pairs, heap sizes, merges, goodness recomputes).
//
// Overhead discipline: all recording goes through a MetricsRegistry*; a null
// registry makes every call a no-op (one branch), so disabled runs pay
// nothing measurable. The registry is single-writer — librock's merge loop is
// sequential and the parallel graph phases report aggregates once, after
// joining — so no locks are taken.

#ifndef ROCK_DIAG_METRICS_H_
#define ROCK_DIAG_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/timer.h"

namespace rock::diag {

/// Aggregated observations of one named timer.
struct TimerStats {
  uint64_t count = 0;        ///< number of recorded intervals
  double total_seconds = 0;  ///< sum of recorded intervals
  double min_seconds = 0;    ///< shortest interval (0 when count == 0)
  double max_seconds = 0;    ///< longest interval

  /// Folds one observation into the aggregate.
  void Record(double seconds);
  /// Folds another aggregate into this one.
  void Merge(const TimerStats& other);
};

/// Immutable-ish snapshot of one run's metrics. Keys are dotted metric names
/// ("stage.links", "graph.edges"); std::map keeps serialization
/// deterministic. See docs/OBSERVABILITY.md for the name catalog.
struct RunMetrics {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStats> timers;

  /// Counter value, or `fallback` when the counter was never written.
  uint64_t CounterOr(const std::string& name, uint64_t fallback = 0) const;
  /// Gauge value, or `fallback` when the gauge was never written.
  double GaugeOr(const std::string& name, double fallback = 0.0) const;
  /// Timer aggregate, or nullptr when the timer never fired.
  const TimerStats* FindTimer(const std::string& name) const;

  /// Adds one timer observation directly (used by callers that measure a
  /// stage outside any registry, e.g. RockClusterer's neighbor phase).
  void RecordSeconds(const std::string& name, double seconds);

  /// Folds `other` into this: counters add, gauges overwrite, timers merge.
  void Merge(const RunMetrics& other);

  /// Serializes to a stable, machine-readable JSON report (schema in
  /// docs/OBSERVABILITY.md). `tool` names the producing command/phase.
  std::string ToJson(std::string_view tool) const;
};

/// Collects metrics during a run. Recording through a null registry pointer
/// is a supported no-op, which is how "metrics disabled" is spelled.
class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name` (created at 0 on first touch).
  void AddCounter(std::string_view name, uint64_t delta);
  /// Raises counter `name` to `value` if it is below it (peak tracking).
  void MaxCounter(std::string_view name, uint64_t value);
  /// Sets gauge `name` (last write wins).
  void SetGauge(std::string_view name, double value);
  /// Records one wall-time observation for timer `name`.
  void RecordSeconds(std::string_view name, double seconds);

  /// Copies the collected metrics out.
  RunMetrics Snapshot() const { return data_; }

 private:
  RunMetrics data_;
};

// Null-safe wrappers: the hot paths call these so that a disabled run
// (registry == nullptr) costs exactly one predictable branch.
inline void AddCounter(MetricsRegistry* r, std::string_view name,
                       uint64_t delta) {
  if (r != nullptr) r->AddCounter(name, delta);
}
inline void MaxCounter(MetricsRegistry* r, std::string_view name,
                       uint64_t value) {
  if (r != nullptr) r->MaxCounter(name, value);
}
inline void SetGauge(MetricsRegistry* r, std::string_view name, double value) {
  if (r != nullptr) r->SetGauge(name, value);
}

/// RAII stage timer: records the scope's wall time into `name` on
/// destruction (or at Stop()). Null registry → no-op.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name)
      : registry_(registry), name_(name) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops early and returns the elapsed seconds; records exactly once.
  double Stop();

 private:
  MetricsRegistry* registry_;
  std::string name_;
  Timer timer_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
};

}  // namespace rock::diag

#endif  // ROCK_DIAG_METRICS_H_
