// librock — diag/invariants.h
//
// Self-verification for the graph and merge phases. The ROCK merge loop
// maintains several pieces of redundant state (point links, cluster cross-
// link maps, one local heap per cluster, a global heap) across thousands of
// merges; these checkers re-derive each layer from first principles and
// report any disagreement. They serve two roles:
//
//   1. runtime tripwires inside the merge engine, enabled per-run via
//      RockOptions::diag.invariant_check_every, the ROCK_DIAG_CHECKS
//      environment variable, or the ROCK_DIAG_CHECKS CMake option
//      (see InvariantCheckInterval);
//   2. oracles for the differential / property tests, which call them
//      directly on graphs and link matrices.
//
// Violations are never fatal: they are counted in an InvariantReport (and
// surfaced as diag.invariant_* counters in RunMetrics) and echoed to stderr
// so red runs are diagnosable from their logs.

#ifndef ROCK_DIAG_INVARIANTS_H_
#define ROCK_DIAG_INVARIANTS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph/links.h"
#include "graph/neighbors.h"

namespace rock::diag {

/// Effective invariant-check cadence for a run: `configured` when > 0, else
/// the ROCK_DIAG_CHECKS environment variable (an interval; "0" or unset
/// disables), else the compile-time default (ROCK_DIAG_CHECKS builds check
/// every 16th merge; regular builds return 0 = disabled).
size_t InvariantCheckInterval(size_t configured);

/// One detected inconsistency.
struct InvariantViolation {
  std::string check;   ///< checker name, e.g. "links.symmetry"
  std::string detail;  ///< human-readable specifics
};

/// Collects violations across a run. Reporting also logs to stderr (capped)
/// so failures reproduce from logs.
class InvariantReport {
 public:
  /// Records a violation of `check` with `detail`.
  void Report(std::string_view check, std::string detail);

  /// Number of checks that were executed (bumped by the Check* functions
  /// and the merge engine; purely informational).
  void NoteCheck() { ++checks_run_; }

  bool ok() const { return violations_.empty(); }
  size_t checks_run() const { return checks_run_; }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

 private:
  std::vector<InvariantViolation> violations_;
  size_t checks_run_ = 0;
};

/// Structural sanity of a neighbor graph: every row sorted and duplicate-
/// free, no self-loops, adjacency symmetric, indices in range.
void CheckNeighborGraph(const NeighborGraph& graph, InvariantReport* report);

/// LinkMatrix self-consistency: Count(i, j) == Count(j, i) for every stored
/// entry, no self-links, and TotalLinks/NumNonZeroPairs agree with a fresh
/// row scan.
void CheckLinkMatrixSymmetry(const LinkMatrix& links, InvariantReport* report);

/// Full link recount: `links` must equal the brute-force neighbor-list
/// intersection counts of `graph`. O(n² · m) — intended for tests and
/// checked builds on small inputs.
void CheckLinksMatchGraph(const NeighborGraph& graph, const LinkMatrix& links,
                          InvariantReport* report);

}  // namespace rock::diag

#endif  // ROCK_DIAG_INVARIANTS_H_
