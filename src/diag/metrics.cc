#include "diag/metrics.h"

#include <algorithm>
#include <cstdio>

namespace rock::diag {

void TimerStats::Record(double seconds) {
  min_seconds = count == 0 ? seconds : std::min(min_seconds, seconds);
  max_seconds = std::max(max_seconds, seconds);
  total_seconds += seconds;
  ++count;
}

void TimerStats::Merge(const TimerStats& other) {
  if (other.count == 0) return;
  min_seconds = count == 0 ? other.min_seconds
                           : std::min(min_seconds, other.min_seconds);
  max_seconds = std::max(max_seconds, other.max_seconds);
  total_seconds += other.total_seconds;
  count += other.count;
}

uint64_t RunMetrics::CounterOr(const std::string& name,
                               uint64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

double RunMetrics::GaugeOr(const std::string& name, double fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

const TimerStats* RunMetrics::FindTimer(const std::string& name) const {
  auto it = timers.find(name);
  return it == timers.end() ? nullptr : &it->second;
}

void RunMetrics::RecordSeconds(const std::string& name, double seconds) {
  timers[name].Record(seconds);
}

void RunMetrics::Merge(const RunMetrics& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, stats] : other.timers) timers[name].Merge(stats);
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

std::string RunMetrics::ToJson(std::string_view tool) const {
  std::string out;
  out += "{\n  \"version\": 1,\n  \"tool\": \"";
  out += JsonEscape(tool);
  out += "\",\n  \"stages\": [";
  // The stage list is derived from the "stage.*" timers so readers can walk
  // the pipeline without knowing librock's internals.
  bool first = true;
  for (const auto& [name, stats] : timers) {
    if (name.rfind("stage.", 0) != 0) continue;
    out += first ? "" : ", ";
    out += '"';
    out += JsonEscape(name.substr(6));
    out += '"';
    first = false;
  }
  out += "],\n  \"timers\": {";
  first = true;
  for (const auto& [name, stats] : timers) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": ";
    out += std::to_string(stats.count);
    out += ", \"total_seconds\": ";
    AppendDouble(&out, stats.total_seconds);
    out += ", \"min_seconds\": ";
    AppendDouble(&out, stats.min_seconds);
    out += ", \"max_seconds\": ";
    AppendDouble(&out, stats.max_seconds);
    out += "}";
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": ";
    AppendDouble(&out, value);
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  data_.counters[std::string(name)] += delta;
}

void MetricsRegistry::MaxCounter(std::string_view name, uint64_t value) {
  uint64_t& slot = data_.counters[std::string(name)];
  slot = std::max(slot, value);
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  data_.gauges[std::string(name)] = value;
}

void MetricsRegistry::RecordSeconds(std::string_view name, double seconds) {
  data_.timers[std::string(name)].Record(seconds);
}

double ScopedTimer::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  elapsed_ = timer_.ElapsedSeconds();
  if (registry_ != nullptr) registry_->RecordSeconds(name_, elapsed_);
  return elapsed_;
}

}  // namespace rock::diag
