#include "diag/invariants.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace rock::diag {

size_t InvariantCheckInterval(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("ROCK_DIAG_CHECKS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<size_t>(v);
    return 1;  // set but not a number ("on", "yes", …) → check every merge
  }
#ifdef ROCK_DIAG_CHECKS_DEFAULT
  return 16;
#else
  return 0;
#endif
}

void InvariantReport::Report(std::string_view check, std::string detail) {
  constexpr size_t kMaxLogged = 20;
  if (violations_.size() < kMaxLogged) {
    std::fprintf(stderr, "rock-diag: invariant violation [%.*s] %s\n",
                 static_cast<int>(check.size()), check.data(),
                 detail.c_str());
  } else if (violations_.size() == kMaxLogged) {
    std::fprintf(stderr, "rock-diag: further violations suppressed\n");
  }
  violations_.push_back(
      InvariantViolation{std::string(check), std::move(detail)});
}

void CheckNeighborGraph(const NeighborGraph& graph, InvariantReport* report) {
  report->NoteCheck();
  const size_t n = graph.size();
  for (size_t i = 0; i < n; ++i) {
    const auto& row = graph.nbrlist[i];
    if (!std::is_sorted(row.begin(), row.end())) {
      report->Report("graph.sorted",
                     "row " + std::to_string(i) + " is not sorted");
    }
    if (std::adjacent_find(row.begin(), row.end()) != row.end()) {
      report->Report("graph.dedup",
                     "row " + std::to_string(i) + " has duplicates");
    }
    for (PointIndex j : row) {
      if (j == i) {
        report->Report("graph.self_loop",
                       "point " + std::to_string(i) + " lists itself");
        continue;
      }
      if (j >= n) {
        report->Report("graph.range", "row " + std::to_string(i) +
                                          " lists out-of-range " +
                                          std::to_string(j));
        continue;
      }
      if (!graph.AreNeighbors(j, static_cast<PointIndex>(i))) {
        report->Report("graph.symmetry",
                       "edge (" + std::to_string(i) + ", " +
                           std::to_string(j) + ") has no reverse entry");
      }
    }
  }
}

void CheckLinkMatrixSymmetry(const LinkMatrix& links,
                             InvariantReport* report) {
  report->NoteCheck();
  const size_t n = links.size();
  size_t entries = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto pi = static_cast<PointIndex>(i);
    for (const auto& [j, count] : links.Row(pi)) {
      ++entries;
      total += count;
      if (j == pi) {
        report->Report("links.self",
                       "point " + std::to_string(i) + " links to itself");
        continue;
      }
      if (count == 0) {
        report->Report("links.zero_entry",
                       "stored zero at (" + std::to_string(i) + ", " +
                           std::to_string(j) + ")");
      }
      if (links.Count(j, pi) != count) {
        report->Report("links.symmetry",
                       "link(" + std::to_string(i) + ", " +
                           std::to_string(j) + ") = " +
                           std::to_string(count) + " but reverse = " +
                           std::to_string(links.Count(j, pi)));
      }
    }
  }
  if (entries % 2 != 0 || entries / 2 != links.NumNonZeroPairs()) {
    report->Report("links.pair_count",
                   "row scan found " + std::to_string(entries) +
                       " entries but NumNonZeroPairs() = " +
                       std::to_string(links.NumNonZeroPairs()));
  }
  if (total % 2 != 0 || total / 2 != links.TotalLinks()) {
    report->Report("links.total",
                   "row scan totals " + std::to_string(total) +
                       " but TotalLinks() = " +
                       std::to_string(links.TotalLinks()));
  }
}

void CheckLinksMatchGraph(const NeighborGraph& graph, const LinkMatrix& links,
                          InvariantReport* report) {
  report->NoteCheck();
  if (links.size() != graph.size()) {
    report->Report("links.size", "matrix size " +
                                     std::to_string(links.size()) +
                                     " != graph size " +
                                     std::to_string(graph.size()));
    return;
  }
  const LinkMatrix expected = ComputeLinksBruteForce(graph);
  const auto n = static_cast<PointIndex>(graph.size());
  for (PointIndex i = 0; i < n; ++i) {
    for (PointIndex j = static_cast<PointIndex>(i + 1); j < n; ++j) {
      if (links.Count(i, j) != expected.Count(i, j)) {
        report->Report("links.recount",
                       "link(" + std::to_string(i) + ", " +
                           std::to_string(j) + ") = " +
                           std::to_string(links.Count(i, j)) +
                           " but recount = " +
                           std::to_string(expected.Count(i, j)));
      }
    }
  }
}

}  // namespace rock::diag
