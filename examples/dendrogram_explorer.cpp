// dendrogram_explorer — one ROCK run, many granularities: the merge
// history induces a dendrogram that can be cut at any k after the fact
// (no re-clustering), plus a Newick export for tree viewers.
//
// Run: ./build/examples/dendrogram_explorer

#include <cstdio>

#include "core/dendrogram.h"
#include "core/rock.h"
#include "data/dataset.h"
#include "similarity/jaccard.h"
#include "synth/basket_generator.h"

int main() {
  using namespace rock;

  // A small basket database with four latent segments.
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {30, 24, 18, 12};
  gen.items_per_cluster = {12, 14, 10, 12};
  gen.num_outliers = 4;
  gen.mean_tx_size = 7.0;
  gen.stddev_tx_size = 1.0;
  gen.seed = 99;
  auto db = GenerateBasketData(gen);
  if (!db.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // One clustering run, all the way down to k = 1 (ROCK stops early when
  // links run out, which is fine — the history is what we want).
  TransactionJaccard sim(*db);
  RockOptions opt;
  opt.theta = 0.45;
  opt.num_clusters = 1;
  auto result = RockClusterer(opt).Cluster(sim);
  if (!result.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto dendro = Dendrogram::FromRockResult(*result, db->size());
  if (!dendro.ok()) {
    std::fprintf(stderr, "dendrogram failed: %s\n",
                 dendro.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu participants, %zu merges recorded\n",
              dendro->num_participants(), dendro->num_merges());

  // Explore granularities without re-running the clusterer.
  std::printf("\n%-6s %-10s %s\n", "k", "clusters", "sizes");
  for (size_t k : {2u, 3u, 4u, 6u, 10u}) {
    Clustering cut = dendro->CutAtK(k);
    std::printf("%-6zu %-10zu", k, cut.num_clusters());
    for (size_t c = 0; c < cut.num_clusters() && c < 12; ++c) {
      std::printf(" %zu", cut.clusters[c].size());
    }
    std::printf("\n");
  }

  // Merge-goodness trace: sharp drops suggest natural cluster counts.
  std::printf("\nlast 8 merge goodness values (low values = forced merges):\n");
  const size_t m = dendro->num_merges();
  for (size_t i = (m > 8 ? m - 8 : 0); i < m; ++i) {
    std::printf("  merge %zu: g = %.3f\n", i + 1, dendro->MergeGoodness(i));
  }

  const std::string newick = dendro->ToNewick();
  std::printf("\nNewick export (%zu chars):\n%.120s…\n", newick.size(),
              newick.c_str());
  return 0;
}
