// timeseries_funds — clustering time series with ROCK (paper §5.1/§5.2):
// daily closing prices become Up/Down/No categorical records; missing
// history (young funds) is handled by the pairwise-missing similarity; the
// clusters group funds by behavior (bond funds move together, growth funds
// move together, twin funds managed by one person track almost exactly).
//
// Run: ./build/examples/timeseries_funds

#include <cstdio>
#include <map>
#include <string>

#include "core/rock.h"
#include "data/timeseries.h"
#include "similarity/jaccard.h"
#include "synth/fund_generator.h"

int main() {
  using namespace rock;

  // Simulated fund price histories (see synth/fund_generator.h for how the
  // market structure is modeled). Swap in your own TimeSeriesSet to cluster
  // real series.
  auto market = GenerateFundData(FundGeneratorOptions{});
  if (!market.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 market.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu funds, %zu business dates\n", market->series.size(),
              market->num_dates);

  // Step 1 — categorical transform: one attribute per date transition with
  // values Up / Down / No; unobserved transitions are missing values.
  auto categorical = TimeSeriesToCategorical(*market);
  if (!categorical.ok()) {
    std::fprintf(stderr, "transform failed: %s\n",
                 categorical.status().ToString().c_str());
    return 1;
  }

  // Step 2 — similarity: compare two funds only over dates both observed
  // (§3.1.2), so a fund launched last year can still match its older twin.
  PairwiseMissingJaccard sim(*categorical);

  // Step 3 — ROCK.
  RockOptions options;
  options.theta = 0.8;
  options.num_clusters = 40;
  RockClusterer clusterer(options);
  auto result = clusterer.Cluster(sim);
  if (!result.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Clustering& c = result->clustering;
  std::printf("%zu clusters, %zu outlier funds\n\n", c.num_clusters(),
              c.num_outliers());
  for (size_t i = 0; i < c.num_clusters() && i < 20; ++i) {
    if (c.clusters[i].size() < 2) continue;
    std::printf("cluster %zu (%zu funds): ", i + 1, c.clusters[i].size());
    size_t shown = 0;
    for (PointIndex p : c.clusters[i]) {
      if (shown++ == 6) {
        std::printf("…");
        break;
      }
      std::printf("%s ", market->series[p].name.c_str());
    }
    // Majority ground-truth group, for the demo's sake.
    std::map<std::string, size_t> groups;
    for (PointIndex p : c.clusters[i]) ++groups[market->series[p].group];
    std::string best;
    size_t best_count = 0;
    for (const auto& [g, n] : groups) {
      if (n > best_count) {
        best_count = n;
        best = g;
      }
    }
    std::printf("  [mostly: %s]\n", best.c_str());
  }
  return 0;
}
