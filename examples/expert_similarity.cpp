// expert_similarity — ROCK on a non-metric, expert-supplied similarity
// table (paper §1.2/§3.1: "our methods naturally extend to non-metric
// similarity measures that are relevant in situations where a domain
// expert/similarity table is the only source of knowledge").
//
// Scenario: a zoologist scores pairwise similarity of animals by judgment.
// The scores deliberately violate the triangle inequality — no Lp embedding
// exists — yet ROCK clusters them, because links only need the neighbor
// predicate sim >= theta.
//
// Run: ./build/examples/expert_similarity

#include <cstdio>
#include <string>
#include <vector>

#include "core/rock.h"
#include "similarity/similarity_table.h"

int main() {
  using namespace rock;

  const std::vector<std::string> animals = {
      "wolf", "dog", "coyote", "fox",        // canids
      "tuna", "salmon", "trout", "shark",    // fish
      "bat",                                 // the awkward one
  };

  SimilarityTable expert(animals.size());
  auto set = [&](size_t i, size_t j, double s) {
    Status st = expert.Set(i, j, s);
    if (!st.ok()) {
      std::fprintf(stderr, "bad entry: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  // Canids: strongly similar to each other.
  set(0, 1, 0.9); set(0, 2, 0.85); set(0, 3, 0.7);
  set(1, 2, 0.8); set(1, 3, 0.7); set(2, 3, 0.75);
  // Fish: likewise.
  set(4, 5, 0.85); set(4, 6, 0.8); set(4, 7, 0.6);
  set(5, 6, 0.9); set(5, 7, 0.6); set(6, 7, 0.65);
  // The expert finds the bat vaguely dog-like ("furry, social") and
  // vaguely shark-like ("echolocation? fins? who knows") — judgments that
  // no metric could produce together.
  set(8, 1, 0.55); set(8, 7, 0.5);

  RockOptions options;
  options.theta = 0.6;  // "considerably similar" per the expert's scale
  options.num_clusters = 2;
  RockClusterer clusterer(options);
  auto result = clusterer.Cluster(expert);
  if (!result.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Clustering& c = result->clustering;
  std::printf("%zu clusters, %zu outliers\n", c.num_clusters(),
              c.num_outliers());
  for (size_t i = 0; i < c.num_clusters(); ++i) {
    std::printf("cluster %zu: ", i + 1);
    for (PointIndex p : c.clusters[i]) {
      std::printf("%s ", animals[p].c_str());
    }
    std::printf("\n");
  }
  for (size_t p = 0; p < animals.size(); ++p) {
    if (c.assignment[p] == kUnassigned) {
      std::printf("outlier: %s (no neighbors at theta=%.1f — the bat's "
                  "odd scores isolate it)\n",
                  animals[p].c_str(), options.theta);
    }
  }
  return 0;
}
