// uci_votes — clustering categorical records with missing values (paper
// §5.2, Congressional Votes): loads the real UCI file when present, falls
// back to the calibrated surrogate, clusters with ROCK at θ = 0.73 and
// prints the party composition plus each cluster's profile.
//
// Run: ./build/examples/uci_votes [path/to/house-votes-84.data]

#include <cstdio>
#include <string>

#include "core/rock.h"
#include "data/csv_reader.h"
#include "eval/contingency.h"
#include "eval/profiles.h"
#include "similarity/jaccard.h"
#include "synth/votes_generator.h"

int main(int argc, char** argv) {
  using namespace rock;

  CategoricalDataset votes;
  if (argc > 1) {
    auto loaded = ReadCsvFile(argv[1], CsvOptions{});
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    votes = std::move(*loaded);
    std::printf("loaded %zu records from %s\n", votes.size(), argv[1]);
  } else {
    auto generated = GenerateVotesData(VotesGeneratorOptions{});
    if (!generated.ok()) {
      std::fprintf(stderr, "generator failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    votes = std::move(*generated);
    std::printf("no file given — generated %zu surrogate records "
                "(pass the UCI house-votes-84.data path to use real data)\n",
                votes.size());
  }

  CategoricalJaccard sim(votes);
  RockOptions options;
  options.theta = 0.73;  // the paper's setting for this data set
  options.num_clusters = 2;
  options.outlier_stop_multiple = 3.0;
  options.min_cluster_support = 5;
  auto result = RockClusterer(options).Cluster(sim);
  if (!result.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto table = ContingencyTable::Build(result->clustering, votes.labels());
  if (table.ok()) {
    for (size_t c = 0; c < table->num_clusters(); ++c) {
      std::printf("cluster %zu: ", c + 1);
      for (size_t l = 0; l < table->num_classes(); ++l) {
        std::printf("%s=%llu  ",
                    votes.labels().Name(static_cast<LabelId>(l)).c_str(),
                    static_cast<unsigned long long>(table->Count(c, l)));
      }
      std::printf("\n");
    }
  }

  std::printf("\ncluster profiles (frequent issue positions):\n");
  ProfileOptions popt;
  popt.min_support = 0.8;
  for (const auto& profile :
       ProfileClusters(votes, result->clustering, popt)) {
    std::printf("%s", FormatProfile(profile).c_str());
  }
  return 0;
}
