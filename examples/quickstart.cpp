// quickstart — the smallest complete librock program.
//
// Clusters a toy market-basket database with ROCK and prints the clusters.
// Build:  cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "core/rock.h"
#include "data/dataset.h"
#include "similarity/jaccard.h"

int main() {
  using namespace rock;

  // 1. Build a dataset. Items are interned strings; a transaction is a set.
  TransactionDataset db;
  db.AddTransaction({"french wine", "swiss cheese", "belgian chocolate"});
  db.AddTransaction({"french wine", "swiss cheese", "pasta sauce"});
  db.AddTransaction({"swiss cheese", "belgian chocolate", "pasta sauce"});
  db.AddTransaction({"french wine", "belgian chocolate", "pasta sauce"});
  db.AddTransaction({"diapers", "baby food", "toys"});
  db.AddTransaction({"diapers", "baby food", "milk"});
  db.AddTransaction({"baby food", "toys", "milk"});
  db.AddTransaction({"diapers", "toys", "milk"});
  db.AddTransaction({"lawn mower"});  // an outlier

  // 2. Pick a similarity. Jaccard |T1∩T2| / |T1∪T2| is the paper's choice
  //    for basket data.
  TransactionJaccard sim(db);

  // 3. Configure and run ROCK: points whose similarity >= theta are
  //    "neighbors"; clusters merge by common-neighbor counts ("links").
  RockOptions options;
  options.theta = 0.4;      // neighbor threshold
  options.num_clusters = 2; // desired k (a hint; see §5.2 of the paper)
  RockClusterer clusterer(options);

  auto result = clusterer.Cluster(sim);
  if (!result.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Read the result. `assignment[i]` is the cluster of transaction i,
  //    or kUnassigned for outliers.
  const Clustering& clustering = result->clustering;
  std::printf("found %zu clusters (+%zu outliers)\n\n",
              clustering.num_clusters(), clustering.num_outliers());
  for (size_t c = 0; c < clustering.num_clusters(); ++c) {
    std::printf("cluster %zu:\n", c + 1);
    for (PointIndex p : clustering.clusters[c]) {
      std::printf("  tx %u: {", p);
      bool first = true;
      for (ItemId item : db.transaction(p)) {
        std::printf("%s%s", first ? "" : ", ",
                    db.items().Name(item).c_str());
        first = false;
      }
      std::printf("}\n");
    }
  }
  for (size_t p = 0; p < db.size(); ++p) {
    if (clustering.assignment[p] == kUnassigned) {
      std::printf("outlier: tx %zu\n", p);
    }
  }
  return 0;
}
