// customer_segmentation — the paper's §1 motivating scenario at scale:
// segment customers of a store by their purchase baskets, using the full
// disk-backed ROCK pipeline (Figure 2): the database lives on disk, a
// random sample is clustered in memory, and every remaining customer is
// labeled by streaming the store through the labeling phase.
//
// Run: ./build/examples/customer_segmentation [num_customers]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "core/pipeline.h"
#include "data/disk_store.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "synth/basket_generator.h"

int main(int argc, char** argv) {
  using namespace rock;
  const size_t num_customers =
      argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 20000;

  // Simulate the store's transaction log: three shopper segments plus some
  // one-off visitors.
  BasketGeneratorOptions gen;
  gen.cluster_sizes = {num_customers / 2, num_customers / 3,
                       num_customers / 6};
  gen.items_per_cluster = {22, 18, 20};
  gen.num_outliers = num_customers / 20;
  gen.seed = 2026;
  auto db = GenerateBasketData(gen);
  if (!db.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  const auto store_path =
      std::filesystem::temp_directory_path() / "customer_store.bin";
  if (Status s = WriteDatasetToStore(*db, store_path.string()); !s.ok()) {
    std::fprintf(stderr, "store write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("transaction log: %zu customers on disk (%s)\n", db->size(),
              store_path.c_str());

  // Run the Figure 2 pipeline: sample -> cluster -> label from disk.
  PipelineOptions opt;
  opt.rock.theta = 0.5;
  opt.rock.num_clusters = 3;
  opt.rock.outlier_stop_multiple = 3.0;  // weed tiny clusters (§4.6)
  opt.rock.min_cluster_support = 5;
  opt.sample_size = 1500;
  opt.labeling.fraction = 0.25;
  opt.seed = 1;
  auto result = RunRockPipeline(store_path.string(), opt);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("sampled %zu customers, clustered into %zu segments "
              "(sample %.2fs, cluster %.2fs, label %.2fs)\n",
              opt.sample_size,
              result->sample_result.clustering.num_clusters(),
              result->sample_seconds, result->cluster_seconds,
              result->label_seconds);

  // Segment sizes over the whole database.
  std::map<ClusterIndex, size_t> segment_sizes;
  for (ClusterIndex c : result->labeling.assignments) ++segment_sizes[c];
  for (const auto& [segment, size] : segment_sizes) {
    if (segment == kUnassigned) {
      std::printf("  unsegmented (one-off visitors): %zu customers\n", size);
    } else {
      std::printf("  segment %d: %zu customers\n", segment, size);
    }
  }

  // Since the generator knows the true segments, score the result.
  auto table = ContingencyTable::Build(
      result->labeling.assignments, db->labels().labels(),
      result->sample_result.clustering.num_clusters(),
      db->labels().num_classes());
  if (table.ok()) {
    std::printf("segmentation purity vs ground truth: %.3f  (ARI %.3f)\n",
                Purity(*table), AdjustedRandIndex(*table));
  }
  std::filesystem::remove(store_path);
  return 0;
}
